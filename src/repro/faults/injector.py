"""Scripted fault plans for the broker, the TCP transport, and netem links.

A :class:`FaultInjector` holds an ordered list of *rules*. Each rule
matches a channel/op, carries a budget of uses, and applies one effect:

- ``drop`` — the operation fails with :class:`ConnectionError` before it
  reaches the target (a lost request),
- ``delay`` — the operation is held for a fixed time first (congestion),
- ``kill`` — the underlying socket is shut down mid-operation, so the
  in-flight request dies and the client must reconnect (a server crash
  or NAT timeout),
- ``pause`` — every matching operation stalls until a deadline passes
  (a broker GC pause / overload window),
- ``link`` — inter-shard replication traffic between one pair of shards
  is dropped until healed (a partitioned network link), so ISR eviction
  can be exercised without killing any process.
- ``torn`` — the next durable-log group commit writes only a prefix of
  its final batch and then dies (a power loss mid-``write``), so crash-
  recovery tests get a deterministically torn segment tail instead of
  relying on real SIGKILL timing. Honoured by the segment store's
  ``on_flush`` hook.

Rules are evaluated first-match per call and consumed deterministically;
probabilistic rules draw from a seeded RNG so a plan with randomness is
still replayable. The same injector instance can be installed into all
three layers at once:

- in-proc :class:`~repro.broker.broker.Broker` — wrap it in
  :class:`FaultyBroker` (hands the wrapper to producers/consumers),
- :class:`~repro.broker.remote.RemoteBroker` — assign to its
  ``fault_injector`` attribute (consulted before every request),
- :class:`~repro.netem.link.Link` — assign to its ``injector``
  attribute (consulted on every transfer).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.util.validation import check_in_range, check_non_negative


class FaultInjected(ConnectionError):
    """A failure manufactured by the injector (subclasses ConnectionError
    so existing loss-handling paths treat it like a real network drop)."""


@dataclass
class _Rule:
    kind: str  # "drop" | "delay" | "kill" | "pause" | "call" | "link" | "torn"
    op: str | None = None  # op-name filter; None matches every op
    remaining: int = 1  # uses left; negative = unlimited
    seconds: float = 0.0  # delay length / pause deadline horizon
    probability: float = 1.0  # applied per matching call (seeded RNG)
    until: float = 0.0  # monotonic deadline for "pause" rules
    callback: object = None  # side effect for "call" rules

    def matches(self, op: str) -> bool:
        return self.op is None or self.op == op


@dataclass
class FaultInjector:
    """A deterministic, seeded fault plan shared across layers."""

    seed: int = 0
    _rules: list = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    #: kind -> number of times that fault fired.
    fired: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    # -- plan construction ----------------------------------------------------

    def drop_next(self, n: int = 1, op: str | None = None, probability: float = 1.0) -> "FaultInjector":
        """Fail the next *n* matching operations with :class:`FaultInjected`."""
        check_non_negative("n", n)
        check_in_range("probability", probability, 0.0, 1.0)
        with self._lock:
            self._rules.append(_Rule("drop", op=op, remaining=n, probability=probability))
        return self

    def delay_next(self, seconds: float, n: int = 1, op: str | None = None) -> "FaultInjector":
        """Hold the next *n* matching operations for *seconds* first."""
        check_non_negative("seconds", seconds)
        with self._lock:
            self._rules.append(_Rule("delay", op=op, remaining=n, seconds=seconds))
        return self

    def kill_socket_once(self, op: str | None = None) -> "FaultInjector":
        """Shut down the transport socket under the next matching request.

        Unlike ``drop`` (which fails before sending), the kill lands
        mid-operation: the request goes out over a socket that is already
        dead, so the client sees a broken connection and must reconnect.
        Only the remote-transport hook honours this rule.
        """
        with self._lock:
            self._rules.append(_Rule("kill", op=op, remaining=1))
        return self

    def call_after(self, fn, n: int = 1, op: str | None = None) -> "FaultInjector":
        """Run ``fn()`` when the *n*-th matching operation fires.

        The callback runs in the operating thread *before* the request
        proceeds, so chaos plans can trigger an environmental failure —
        e.g. SIGKILL a shard process — at a deterministic point in the
        client's op stream rather than on a wall-clock timer. The op
        itself is not failed; whatever ``fn`` broke fails it naturally.
        """
        check_non_negative("n", n)
        with self._lock:
            if n > 1:
                # Skip the first n-1 matches with an inert countdown rule.
                self._rules.append(
                    _Rule("call", op=op, remaining=n - 1, callback=None)
                )
            self._rules.append(_Rule("call", op=op, remaining=1, callback=fn))
        return self

    def torn_write_next(self, n: int = 1, op: str | None = None) -> "FaultInjector":
        """Tear the next *n* matching durable-log flushes mid-batch.

        *op* filters on the store identity (``"{topic}/{partition}"``);
        ``None`` tears the next flush of any store consulting this
        injector. The store writes a prefix of the flush (cutting the
        final batch in half), fsyncs it, and marks itself failed — the
        on-disk state is exactly what a power loss mid-``write`` leaves,
        and recovery must CRC-truncate the tail.
        """
        check_non_negative("n", n)
        with self._lock:
            self._rules.append(_Rule("torn", op=op, remaining=n))
        return self

    def pause(self, seconds: float, op: str | None = None) -> "FaultInjector":
        """Stall every matching operation until *seconds* from now."""
        check_non_negative("seconds", seconds)
        with self._lock:
            self._rules.append(
                _Rule("pause", op=op, remaining=-1, until=time.monotonic() + seconds)
            )
        return self

    @staticmethod
    def _link_key(shard_a: int, shard_b: int) -> str:
        a, b = sorted((int(shard_a), int(shard_b)))
        return f"link:{a}:{b}"

    def partition_link(self, shard_a: int, shard_b: int) -> "FaultInjector":
        """Sever the replication link between two shards (both directions).

        Every :meth:`on_replication` push between the pair fails with
        :class:`FaultInjected` until :meth:`heal_link` — the leader's ISR
        tracking sees a follower that is alive but unreachable, exactly
        the failure mode process kills cannot produce.
        """
        with self._lock:
            self._rules.append(
                _Rule("link", op=self._link_key(shard_a, shard_b), remaining=-1)
            )
        return self

    def heal_link(self, shard_a: int, shard_b: int) -> "FaultInjector":
        """Remove every link fault between the pair (traffic resumes)."""
        key = self._link_key(shard_a, shard_b)
        with self._lock:
            self._rules = [
                r for r in self._rules if not (r.kind == "link" and r.op == key)
            ]
        return self

    def clear(self) -> None:
        with self._lock:
            self._rules.clear()

    @property
    def pending(self) -> int:
        """Rules still armed (unlimited/pause rules count as one each)."""
        with self._lock:
            self._prune_locked()
            return len(self._rules)

    def stats(self) -> dict:
        with self._lock:
            return {"seed": self.seed, "fired": dict(self.fired), "pending": len(self._rules)}

    # -- rule evaluation ------------------------------------------------------

    def _prune_locked(self) -> None:
        now = time.monotonic()
        self._rules = [
            r
            for r in self._rules
            if (r.kind == "pause" and r.until > now) or (r.kind != "pause" and r.remaining != 0)
        ]

    def _take(self, op: str, kinds: tuple) -> _Rule | None:
        """Consume and return the first armed rule matching *op*."""
        with self._lock:
            self._prune_locked()
            for rule in self._rules:
                if rule.kind not in kinds or not rule.matches(op):
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                if rule.remaining > 0:
                    rule.remaining -= 1
                # Countdown placeholders for call_after(n) skip matches
                # without running anything; they are not fired faults.
                if rule.kind != "call" or rule.callback is not None:
                    self.fired[rule.kind] = self.fired.get(rule.kind, 0) + 1
                return rule
        return None

    def _apply(self, op: str, sock: socket.socket | None = None) -> None:
        rule = self._take(op, ("pause", "delay", "kill", "drop", "call"))
        if rule is None:
            return
        if rule.kind == "call":
            if rule.callback is not None:
                rule.callback()
        elif rule.kind == "pause":
            remaining = rule.until - time.monotonic()
            if remaining > 0:
                time.sleep(remaining)
        elif rule.kind == "delay":
            time.sleep(rule.seconds)
        elif rule.kind == "kill":
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
            else:
                # No socket at this layer — fail the op outright instead.
                raise FaultInjected(f"injected kill on op {op!r}")
        elif rule.kind == "drop":
            raise FaultInjected(f"injected drop on op {op!r}")

    # -- layer hooks ----------------------------------------------------------

    def on_remote_op(self, op: str, sock: socket.socket) -> None:
        """RemoteBroker hook: runs before each request is framed."""
        self._apply(op, sock=sock)

    def on_broker_op(self, op: str) -> None:
        """In-proc broker hook (via :class:`FaultyBroker`)."""
        self._apply(op)

    def on_transfer(self, link) -> None:
        """netem :class:`~repro.netem.link.Link` hook: runs per transfer."""
        self._apply("transfer")

    def on_flush(self, op: str) -> bool:
        """Segment-store hook: runs before each group-commit write.

        Returns True when the flush should be torn (the store performs
        the partial write itself — only it knows its batch boundaries).
        """
        return self._take(op, ("torn",)) is not None

    def on_replication(self, src_shard: int, dst_shard: int) -> None:
        """Replicator hook: runs before each leader->follower push."""
        rule = self._take(self._link_key(src_shard, dst_shard), ("link",))
        if rule is not None:
            raise FaultInjected(
                f"injected link partition between shards {src_shard} and {dst_shard}"
            )


class FaultyBroker:
    """Proxy over an in-proc broker that routes ops through an injector.

    Hand the proxy to producers/consumers in place of the real broker;
    every data-path call first consults the injector, so a ``drop`` rule
    surfaces exactly like a network failure between client and broker.
    Non-data-path attributes (coordinator, topic registry, stats) pass
    straight through.
    """

    _FAULTED_OPS = (
        "append",
        "append_many",
        "fetch",
        "commit_offset",
        "committed_offset",
        "register_producer",
    )

    def __init__(self, broker, injector: FaultInjector) -> None:
        self._broker = broker
        self.injector = injector

    def __getattr__(self, name):
        target = getattr(self._broker, name)
        if name in self._FAULTED_OPS:
            injector = self.injector

            def faulted(*args, __op=name, __fn=target, **kwargs):
                injector.on_broker_op(__op)
                return __fn(*args, **kwargs)

            return faulted
        return target

    def __repr__(self) -> str:
        return f"FaultyBroker({self._broker!r})"
