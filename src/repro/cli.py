"""Command-line interface for Pilot-Edge experiments.

Usage (also available as ``python -m repro.cli``)::

    # baseline pipeline run (Fig. 2 point)
    python -m repro.cli baseline --points 1000 --devices 4 --messages 32

    # model workload (Fig. 3 point)
    python -m repro.cli model --model kmeans --points 10000 --messages 16

    # simulated geographic run (Fig. 3 geo point)
    python -m repro.cli geo --model kmeans --points 10000 --link transatlantic

    # inspect the registered plugins / resource classes
    python -m repro.cli info

Every experiment subcommand prints the monitoring report as a flat
key=value list (machine-greppable) plus the bottleneck attribution.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.util.log import configure as configure_logging

MODELS = ("baseline", "kmeans", "iforest", "autoencoder")
LINKS = ("loopback", "lan", "regional-wan", "transatlantic", "cellular-edge")


def _link_profile(name: str):
    from repro import netem

    return {
        "loopback": netem.LOOPBACK,
        "lan": netem.LAN,
        "regional-wan": netem.REGIONAL_WAN,
        "transatlantic": netem.TRANSATLANTIC,
        "cellular-edge": netem.CELLULAR_EDGE,
    }[name]


def _model_processor(name: str):
    from repro.core import make_model_processor, passthrough_processor
    from repro.ml import AutoEncoder, IsolationForest, StreamingKMeans

    if name == "baseline":
        return passthrough_processor
    factory = {
        "kmeans": lambda: StreamingKMeans(n_clusters=25),
        "iforest": lambda: IsolationForest(n_estimators=100),
        "autoencoder": lambda: AutoEncoder(epochs=10),
    }[name]
    return make_model_processor(factory)


def _print_report(result, as_json: bool) -> None:
    payload = {
        "completed": result.completed,
        **result.report.row(),
        "bottleneck": result.bottleneck.get("bottleneck"),
        "bottleneck_reason": result.bottleneck.get("reason"),
        "errors": len(result.errors),
    }
    if result.report.lag:
        payload["lag_peak"] = result.report.lag["peak"]
        payload["lag_returned_to_zero"] = result.report.lag["returned_to_zero"]
    if result.report.spans:
        payload["span_bottleneck"] = result.report.spans.get("slowest")
        payload["traces"] = result.report.spans.get("traces")
    if as_json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key}={value}")


def _make_telemetry(args: argparse.Namespace):
    """(registry, tracer, sampler) when ``--telemetry DIR`` was given."""
    if getattr(args, "telemetry", None) is None:
        return None, None, None
    from repro.monitoring import MetricsRegistry, TelemetrySampler, Tracer

    registry = MetricsRegistry()
    tracer = Tracer("cli", sample_rate=args.trace_sample)
    sampler = TelemetrySampler(registry=registry, interval_s=args.sample_interval)
    return registry, tracer, sampler


def _dump_telemetry(args: argparse.Namespace, registry, tracer, sampler) -> None:
    """Write telemetry.jsonl / spans.json / metrics.prom into the dir."""
    from pathlib import Path

    from repro.monitoring.export import write_series_jsonl, write_spans_json

    out = Path(args.telemetry)
    out.mkdir(parents=True, exist_ok=True)
    write_series_jsonl(out / "telemetry.jsonl", sampler)
    write_spans_json(out / "spans.json", tracer)
    (out / "metrics.prom").write_text(registry.to_prometheus())
    print(f"telemetry_dir={out}", file=sys.stderr)


def cmd_baseline(args: argparse.Namespace) -> int:
    return cmd_model(args)


def cmd_model(args: argparse.Namespace) -> int:
    from repro import (
        EdgeToCloudPipeline,
        PilotComputeService,
        PilotDescription,
        PipelineConfig,
        ResourceSpec,
        make_block_producer,
    )
    from repro.pilot.plugins.ssh_edge import SshEdgePlugin

    model = getattr(args, "model", "baseline")
    service = PilotComputeService(time_scale=0.0)
    service.register_plugin("ssh", SshEdgePlugin(devices=max(args.devices, 8)))
    try:
        edge = service.submit_pilot(
            PilotDescription(resource="ssh", site="edge", nodes=args.devices,
                             node_spec=ResourceSpec(cores=1, memory_gb=4))
        )
        cloud = service.submit_pilot(
            PilotDescription(resource="cloud", site="cloud",
                             instance_type="lrz.large")
        )
        if not service.wait_all(timeout=60):
            print("error: pilot acquisition failed", file=sys.stderr)
            return 1
        registry, tracer, sampler = _make_telemetry(args)
        supervisor, broker = _make_cluster(args, sampler)
        try:
            pipeline = EdgeToCloudPipeline(
                pilot_edge=edge,
                pilot_cloud_processing=cloud,
                produce_function_handler=make_block_producer(
                    points=args.points, features=args.features, clusters=25
                ),
                process_cloud_function_handler=_model_processor(model),
                config=PipelineConfig(
                    num_devices=args.devices,
                    messages_per_device=args.messages,
                    max_duration=args.max_duration,
                    log_dir=getattr(args, "log_dir", None),
                    log_fsync_acks=getattr(args, "log_fsync_acks", False),
                ),
                broker=broker,
                registry=registry,
                tracer=tracer,
                sampler=sampler,
            )
            result = pipeline.run()
        finally:
            if broker is not None:
                broker.close()
            if supervisor is not None:
                supervisor.stop()
        if registry is not None:
            _dump_telemetry(args, registry, tracer, sampler)
        _print_report(result, args.json)
        return 0 if result.completed else 1
    finally:
        service.close()


def _make_cluster(args: argparse.Namespace, sampler):
    """(supervisor, cluster broker) when ``--broker-workers N`` (N > 0).

    Spawns N shard processes and hands the pipeline a cluster-aware
    client; with the flag absent/0 the pipeline keeps its in-process
    broker and nothing extra runs.
    """
    workers = getattr(args, "broker_workers", 0) or 0
    if workers <= 0:
        return None, None
    from repro.broker import ClusterBroker, ClusterBrokerSupervisor

    replication = getattr(args, "replication_factor", 1) or 1
    log_dir = getattr(args, "log_dir", None)
    storage = None
    if log_dir and getattr(args, "log_fsync_acks", False):
        from repro.broker.storage import StorageConfig

        storage = StorageConfig(fsync_acks=True)
    telemetry = getattr(args, "telemetry", None) is not None
    supervisor = ClusterBrokerSupervisor(
        num_shards=workers,
        topics=[("pilot-edge-data", args.devices)],
        restart=True,
        replication_factor=min(replication, workers),
        log_dir=log_dir,
        storage=storage,
        telemetry=telemetry,
        trace_sample=getattr(args, "trace_sample", 1.0),
    ).start()
    broker = ClusterBroker(supervisor.bootstrap)
    if sampler is not None:
        sampler.watch_cluster(broker)
        if telemetry:
            from repro.monitoring.cluster import ClusterMetricsAggregator

            ClusterMetricsAggregator(broker).attach(sampler)
    return supervisor, broker


def cmd_geo(args: argparse.Namespace) -> int:
    from repro.sim import (
        SimConfig,
        SimulatedPipeline,
        calibrate_model_cost,
        calibrate_produce_cost,
    )

    produce = calibrate_produce_cost(points=args.points, reps=3)
    process = calibrate_model_cost(_model_processor(args.model), points=args.points, reps=3)
    cfg = SimConfig(
        num_devices=args.devices,
        messages_per_device=args.messages,
        points=args.points,
        features=args.features,
        uplink=_link_profile(args.link),
        num_consumers=args.consumers,
        produce_cost=produce,
        process_cost=process,
        seed=args.seed,
    )
    result = SimulatedPipeline(cfg).run()
    payload = {
        **result.report.row(),
        "virtual_duration_s": round(result.virtual_duration_s, 3),
        "bottleneck": result.bottleneck.get("bottleneck"),
        "energy_joules": round(result.energy_joules["total_joules"], 1),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key}={value}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live aggregated dashboard of a running sharded cluster."""
    import time

    from repro.broker import ClusterBroker
    from repro.monitoring.cluster import (
        ClusterEventCollector,
        ClusterMetricsAggregator,
        render_dashboard,
    )

    bootstrap = []
    for part in args.bootstrap.split(","):
        host, _, port = part.strip().rpartition(":")
        bootstrap.append((host or "127.0.0.1", int(port)))
    broker = ClusterBroker(bootstrap)
    aggregator = ClusterMetricsAggregator(broker)
    events = ClusterEventCollector(cluster=broker)
    rate_history: list[float] = []
    last_records = None
    last_t = 0.0
    try:
        while True:
            merged = aggregator.scrape()
            events.poll()
            now = time.monotonic()
            records = merged["counters"].get("broker.records_in", 0.0)
            if last_records is not None and now > last_t:
                rate_history.append(max(0.0, records - last_records) / (now - last_t))
                del rate_history[:-60]
            last_records, last_t = records, now
            panel = render_dashboard(
                merged,
                shard_info=broker.shard_metrics(),
                events=events.events(),
                rate_history=rate_history,
                scrape_s=aggregator.last_scrape_s,
            )
            if not args.watch:
                print(panel)
                return 0
            sys.stdout.write("\x1b[2J\x1b[H" + panel + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        broker.close()


def cmd_info(args: argparse.Namespace) -> int:
    from repro.broker.plugins import available_plugins
    from repro.pilot.plugins.cloud_vm import DEFAULT_CATALOG
    from repro.pilot.registry import available_resource_plugins

    info = {
        "version": __import__("repro").__version__,
        "resource_plugins": available_resource_plugins(),
        "broker_plugins": available_plugins(),
        "instance_catalog": {
            name: {"cores": spec.cores, "memory_gb": spec.memory_gb}
            for name, spec in DEFAULT_CATALOG.items()
        },
        "link_profiles": list(LINKS),
        "models": list(MODELS),
    }
    print(json.dumps(info, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Pilot-Edge reproduction experiments"
    )
    parser.add_argument("--verbose", action="store_true", help="enable framework logging")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, with_model: bool) -> None:
        p.add_argument("--points", type=int, default=1000, help="points per message")
        p.add_argument("--features", type=int, default=32)
        p.add_argument("--devices", type=int, default=2, help="edge devices (= partitions)")
        p.add_argument("--messages", type=int, default=16, help="messages per device")
        p.add_argument("--json", action="store_true", help="JSON output")
        if with_model:
            p.add_argument("--model", choices=MODELS, default="kmeans")

    def telemetry_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--telemetry",
            metavar="DIR",
            default=None,
            help="enable tracing + sampling; write telemetry.jsonl, "
            "spans.json and metrics.prom into DIR",
        )
        p.add_argument(
            "--trace-sample", type=float, default=1.0,
            help="fraction of messages to trace (default 1.0)",
        )
        p.add_argument(
            "--sample-interval", type=float, default=0.25,
            help="telemetry sampling period in seconds",
        )

    def broker_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--broker-workers",
            type=int,
            default=0,
            metavar="N",
            help="shard the broker across N worker processes (multi-core "
            "scaling); 0 keeps the in-process broker",
        )
        p.add_argument(
            "--replication-factor",
            type=int,
            default=1,
            metavar="R",
            help="replicate each partition across R shards with leader "
            "election on failure (capped at --broker-workers); 1 "
            "disables replication",
        )
        p.add_argument(
            "--log-dir",
            metavar="DIR",
            default=None,
            help="durable partition logs: persist segment files under DIR "
            "(per shard when combined with --broker-workers) and recover "
            "them on restart; omit for in-memory logs",
        )
        p.add_argument(
            "--log-fsync-acks",
            action="store_true",
            help="with --log-dir: block each produce ack until its batch "
            "is group-commit fsynced (single-node durability); default "
            "acks in memory and fsyncs on the flush timer",
        )

    p_base = sub.add_parser("baseline", help="pass-through pipeline run (Fig. 2 point)")
    common(p_base, with_model=False)
    p_base.add_argument("--max-duration", type=float, default=600.0)
    telemetry_opts(p_base)
    broker_opts(p_base)
    p_base.set_defaults(func=cmd_baseline)

    p_model = sub.add_parser("model", help="ML workload run (Fig. 3 point)")
    common(p_model, with_model=True)
    p_model.add_argument("--max-duration", type=float, default=600.0)
    telemetry_opts(p_model)
    broker_opts(p_model)
    p_model.set_defaults(func=cmd_model)

    p_geo = sub.add_parser("geo", help="simulated geographic run (Fig. 3 geo point)")
    common(p_geo, with_model=True)
    p_geo.add_argument("--link", choices=LINKS, default="transatlantic")
    p_geo.add_argument("--consumers", type=int, default=0, help="0 = one per device")
    p_geo.add_argument("--seed", type=int, default=0)
    p_geo.set_defaults(func=cmd_geo)

    p_top = sub.add_parser("top", help="live dashboard of a running sharded cluster")
    p_top.add_argument(
        "--bootstrap", required=True, metavar="HOST:PORT[,HOST:PORT]",
        help="shard addresses to bootstrap from",
    )
    p_top.add_argument(
        "--watch", action="store_true",
        help="refresh continuously until interrupted instead of printing once",
    )
    p_top.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh period in seconds (with --watch)",
    )
    p_top.set_defaults(func=cmd_top)

    p_info = sub.add_parser("info", help="list plugins, catalogues and profiles")
    p_info.set_defaults(func=cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging()
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
