"""Parameter-server client handle.

Tasks running on remote pilots do not talk to the server object directly;
they hold a :class:`ParameterClient` that (optionally) charges every
get/set against a :class:`~repro.netem.link.Link`, so sharing an
11,552-parameter auto-encoder across the transatlantic link costs what it
would in the paper's deployment.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.netem.link import Link
from repro.params.server import ParameterServer
from repro.params.store import Entry


def _payload_size(value: Any) -> int:
    """Approximate wire size of a parameter value."""
    try:
        import numpy as np

        if isinstance(value, np.ndarray):
            return int(value.nbytes)
        if isinstance(value, (list, tuple)) and value and all(
            isinstance(v, np.ndarray) for v in value
        ):
            return int(sum(v.nbytes for v in value))
    except ImportError:  # pragma: no cover — numpy is a hard dependency
        pass
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unpicklable sentinel objects: charge a nominal size


class ParameterClient:
    """Client-side view of a :class:`ParameterServer`.

    Parameters
    ----------
    server:
        The shared server instance.
    link:
        Optional network link this client's traffic crosses; every
        operation pays one transfer of the (approximate) payload size.
    namespace:
        Key prefix isolating one pipeline's state from another's.
    """

    def __init__(
        self,
        server: ParameterServer,
        link: Link | None = None,
        namespace: str = "",
    ) -> None:
        self._server = server
        self._link = link
        self._namespace = namespace
        self.network_seconds = 0.0
        #: version-keyed entry cache backing :meth:`get_cached`
        self._cache: dict[str, Entry] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def _key(self, key: str) -> str:
        return f"{self._namespace}/{key}" if self._namespace else key

    def _charge(self, value: Any) -> None:
        if self._link is not None:
            self.network_seconds += self._link.transfer(_payload_size(value))

    # -- operations ---------------------------------------------------------

    def get(self, key: str) -> Entry:
        entry = self._server.get(self._key(key))
        self._charge(entry.value)
        return entry

    def get_cached(self, key: str) -> Entry:
        """Version-aware read: only pay the transfer when the key moved.

        Compares the server-side entry version against the client's last
        seen version for *key*; when unchanged, the cached entry is
        returned without charging the link (or re-deserializing) — so
        per-message model-weight reads (federated rounds, low/high
        fidelity model swap polling) stop re-paying the full weight
        transfer when nothing was published in between. A version bump
        invalidates the cache and charges one normal transfer.

        ``cache_hits`` / ``cache_misses`` expose the accounting; raises
        :class:`~repro.params.store.KeyNotFound` like :meth:`get`.
        """
        entry = self._server.get(self._key(key))
        cached = self._cache.get(key)
        if cached is not None and cached.version == entry.version:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        self._charge(entry.value)
        self._cache[key] = entry
        return entry

    def get_value(self, key: str, default: Any = None) -> Any:
        value = self._server.get_value(self._key(key), default)
        self._charge(value)
        return value

    def set(self, key: str, value: Any, ttl: float | None = None) -> Entry:
        self._charge(value)
        return self._server.set(self._key(key), value, ttl=ttl)

    def compare_and_set(self, key: str, value: Any, expected_version: int) -> Entry:
        self._charge(value)
        return self._server.compare_and_set(self._key(key), value, expected_version)

    def delete(self, key: str) -> bool:
        return self._server.delete(self._key(key))

    def contains(self, key: str) -> bool:
        return self._server.contains(self._key(key))

    def watch(self, key: str, after_version: int = 0, timeout: float | None = None):
        entry = self._server.watch(self._key(key), after_version, timeout)
        if entry is not None:
            self._charge(entry.value)
        return entry

    def keys(self) -> list[str]:
        prefix = f"{self._namespace}/" if self._namespace else ""
        raw = self._server.keys(prefix)
        return [k[len(prefix):] for k in raw]

    def __repr__(self) -> str:
        link = self._link.profile.name if self._link else "local"
        return f"ParameterClient(namespace={self._namespace!r}, link={link})"
