"""Thread-safe parameter server with watch support.

Processing tasks on different pilots share model state here: the trainer
publishes new weights (bumping the version) and inference tasks either
poll :meth:`get` or block in :meth:`watch` until a newer version lands —
the paper's "model updates are managed via the parameter service".
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.params.store import CasConflict, Entry, KeyNotFound, VersionedStore
from repro.util.ids import new_id


class ParameterServer:
    """Versioned KV store with blocking watches and update callbacks."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or new_id("params")
        self._store = VersionedStore()
        self._lock = threading.RLock()
        self._changed = threading.Condition(self._lock)
        self._subscribers: dict[str, list[Callable]] = {}

    # -- basic KV ------------------------------------------------------------

    def get(self, key: str) -> Entry:
        with self._lock:
            return self._store.get(key)

    def get_value(self, key: str, default: Any = None) -> Any:
        try:
            return self.get(key).value
        except KeyNotFound:
            return default

    def set(self, key: str, value: Any, ttl: float | None = None) -> Entry:
        with self._lock:
            entry = self._store.set(key, value, ttl=ttl)
            subscribers = list(self._subscribers.get(key, []))
            self._changed.notify_all()
        for callback in subscribers:
            try:
                callback(entry)
            except Exception:  # subscriber errors must not poison writers
                pass
        return entry

    def compare_and_set(
        self, key: str, value: Any, expected_version: int, ttl: float | None = None
    ) -> Entry:
        with self._lock:
            entry = self._store.compare_and_set(key, value, expected_version, ttl=ttl)
            subscribers = list(self._subscribers.get(key, []))
            self._changed.notify_all()
        for callback in subscribers:
            try:
                callback(entry)
            except Exception:
                pass
        return entry

    def delete(self, key: str) -> bool:
        with self._lock:
            removed = self._store.delete(key)
            if removed:
                self._changed.notify_all()
            return removed

    def contains(self, key: str) -> bool:
        with self._lock:
            return self._store.contains(key)

    def keys(self, prefix: str = "") -> list[str]:
        with self._lock:
            return self._store.keys(prefix)

    # -- change notification ----------------------------------------------------

    def watch(
        self, key: str, after_version: int = 0, timeout: float | None = None
    ) -> Entry | None:
        """Block until *key* has a version greater than *after_version*.

        Returns the entry, or ``None`` on timeout.
        """
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                if self._store.contains(key):
                    entry = self._store.get(key)
                    if entry.version > after_version:
                        return entry
                if deadline is None:
                    self._changed.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._changed.wait(remaining)

    def subscribe(self, key: str, callback: Callable) -> Callable:
        """Invoke *callback(entry)* on every write to *key*.

        Returns an unsubscribe function.
        """
        with self._lock:
            self._subscribers.setdefault(key, []).append(callback)

        def unsubscribe() -> None:
            with self._lock:
                callbacks = self._subscribers.get(key, [])
                if callback in callbacks:
                    callbacks.remove(callback)

        return unsubscribe

    # -- monitoring ---------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "server": self.name,
                "keys": len(self._store),
                "total_sets": self._store.total_sets,
                "total_gets": self._store.total_gets,
            }

    def __repr__(self) -> str:
        return f"ParameterServer({self.name!r}, keys={len(self.keys())})"
