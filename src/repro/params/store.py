"""Versioned key/value store.

Each key carries a monotonically increasing version so that concurrent
model updates across the continuum can be ordered and conflicting writes
detected (compare-and-set). A TTL supports ephemeral coordination keys
(heartbeats, leases).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.util.validation import check_positive


class KeyNotFound(KeyError):
    """The requested key does not exist (or has expired)."""

    def __init__(self, key: str) -> None:
        super().__init__(key)
        self.key = key

    def __str__(self) -> str:
        return f"key {self.key!r} not found"


class CasConflict(RuntimeError):
    """compare-and-set failed: the key moved past the expected version."""

    def __init__(self, key: str, expected: int, actual: int) -> None:
        super().__init__(
            f"CAS conflict on {key!r}: expected version {expected}, found {actual}"
        )
        self.key = key
        self.expected = expected
        self.actual = actual


@dataclass(frozen=True)
class Entry:
    """A value snapshot with its version and write timestamp."""

    key: str
    value: Any
    version: int
    written_at: float
    expires_at: float | None = None

    @property
    def expired(self) -> bool:
        return self.expires_at is not None and time.monotonic() >= self.expires_at


class VersionedStore:
    """Single-threaded versioned map; thread safety lives in the server."""

    def __init__(self) -> None:
        self._entries: dict[str, Entry] = {}
        self.total_sets = 0
        self.total_gets = 0

    def _live_entry(self, key: str) -> Entry | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.expired:
            del self._entries[key]
            return None
        return entry

    def get(self, key: str) -> Entry:
        self.total_gets += 1
        entry = self._live_entry(key)
        if entry is None:
            raise KeyNotFound(key)
        return entry

    def contains(self, key: str) -> bool:
        return self._live_entry(key) is not None

    def set(self, key: str, value: Any, ttl: float | None = None) -> Entry:
        """Unconditional write; bumps the version."""
        if ttl is not None:
            check_positive("ttl", ttl)
        old = self._live_entry(key)
        version = (old.version + 1) if old else 1
        entry = Entry(
            key=key,
            value=value,
            version=version,
            written_at=time.monotonic(),
            expires_at=(time.monotonic() + ttl) if ttl is not None else None,
        )
        self._entries[key] = entry
        self.total_sets += 1
        return entry

    def compare_and_set(
        self, key: str, value: Any, expected_version: int, ttl: float | None = None
    ) -> Entry:
        """Write only if the key is still at *expected_version*.

        ``expected_version=0`` means "create only if absent".
        """
        old = self._live_entry(key)
        actual = old.version if old else 0
        if actual != expected_version:
            raise CasConflict(key, expected_version, actual)
        return self.set(key, value, ttl=ttl)

    def delete(self, key: str) -> bool:
        if self._live_entry(key) is None:
            return False
        del self._entries[key]
        return True

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(
            k for k in list(self._entries) if k.startswith(prefix) and self._live_entry(k)
        )

    def __len__(self) -> int:
        return len(self.keys())

    def purge_expired(self) -> int:
        """Drop expired entries; returns the count removed."""
        dead = [k for k, e in list(self._entries.items()) if e.expired]
        for k in dead:
            del self._entries[k]
        return len(dead)
