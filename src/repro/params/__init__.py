"""Shared-state / parameter-server substrate (Redis-equivalent).

The paper shares ML model weights across the continuum through "a
Redis-based parameter server". This package provides the same
capability from scratch:

- :class:`VersionedStore` — versioned key/value entries with
  compare-and-set, TTL expiry and per-key statistics,
- :class:`ParameterServer` — thread-safe store plus blocking *watch*
  (wait for a newer version) and update subscriptions,
- :class:`ParameterClient` — the client handle given to pipeline tasks;
  it can be bound to a :mod:`repro.netem` link so cross-continuum
  parameter traffic pays realistic latency/bandwidth costs.
"""

from repro.params.store import VersionedStore, Entry, CasConflict, KeyNotFound
from repro.params.server import ParameterServer
from repro.params.client import ParameterClient

__all__ = [
    "VersionedStore",
    "Entry",
    "CasConflict",
    "KeyNotFound",
    "ParameterServer",
    "ParameterClient",
]
