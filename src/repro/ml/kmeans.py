"""Mini-batch k-means for streaming outlier detection.

The paper's lightest-weight model: 25 clusters, updated per incoming
block; a sample's anomaly score is its Euclidean distance to the nearest
centre. The mini-batch update follows Sculley (WWW 2010): each batch is
assigned to the current centres and the centres move toward the batch
means with per-centre learning rates 1/count.

Centroid initialisation uses k-means++ seeding on the first batch for
fast, stable convergence.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseOutlierDetector
from repro.util.validation import ValidationError, check_positive


def kmeans_plus_plus(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centres by D^2 sampling."""
    n = X.shape[0]
    if k > n:
        raise ValidationError(f"cannot seed {k} centres from {n} samples")
    centers = np.empty((k, X.shape[1]), dtype=np.float64)
    centers[0] = X[rng.integers(n)]
    # Squared distance to the nearest already-chosen centre.
    d2 = ((X - centers[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total <= 0:
            # All points coincide with chosen centres; fill uniformly.
            centers[i:] = X[rng.integers(n, size=k - i)]
            break
        probs = d2 / total
        centers[i] = X[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, ((X - centers[i]) ** 2).sum(axis=1))
    return centers


class StreamingKMeans(BaseOutlierDetector):
    """Mini-batch k-means outlier detector.

    Parameters
    ----------
    n_clusters:
        Number of centres; the paper uses 25 throughout.
    contamination:
        Expected outlier fraction, sets the decision threshold.
    seed:
        Seed for the k-means++ initialisation.
    """

    def __init__(
        self,
        n_clusters: int = 25,
        contamination: float = 0.01,
        seed: int = 0,
    ) -> None:
        super().__init__(contamination=contamination)
        check_positive("n_clusters", n_clusters)
        self.n_clusters = int(n_clusters)
        self._rng = np.random.default_rng(seed)
        self._seed = seed
        self.cluster_centers_: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    # -- model state (for the parameter server) ---------------------------

    def get_weights(self) -> dict:
        """Snapshot of learned state, shareable via the parameter server."""
        if self.cluster_centers_ is None:
            raise ValidationError("model has no weights yet")
        return {
            "cluster_centers": self.cluster_centers_.copy(),
            "counts": self._counts.copy(),
        }

    def set_weights(self, weights: dict) -> None:
        """Restore learned state from a parameter-server snapshot."""
        centers = np.asarray(weights["cluster_centers"], dtype=np.float64)
        counts = np.asarray(weights["counts"], dtype=np.int64)
        if centers.ndim != 2 or centers.shape[0] != self.n_clusters:
            raise ValidationError(
                f"expected ({self.n_clusters}, d) centres, got {centers.shape}"
            )
        if counts.shape != (self.n_clusters,):
            raise ValidationError(f"expected ({self.n_clusters},) counts, got {counts.shape}")
        self.cluster_centers_ = centers.copy()
        self._counts = counts.copy()
        self._n_features = centers.shape[1]
        self._fitted = True

    # -- BaseOutlierDetector hooks ----------------------------------------

    def _reset(self) -> None:
        super()._reset()
        self.cluster_centers_ = None
        self._counts = None
        self._rng = np.random.default_rng(self._seed)

    def _fit_batch(self, X: np.ndarray) -> None:
        if self.cluster_centers_ is None:
            k = min(self.n_clusters, X.shape[0])
            centers = kmeans_plus_plus(X, k, self._rng)
            if k < self.n_clusters:
                # Not enough samples yet: replicate with jitter; later
                # batches will spread the duplicates apart.
                extra_idx = self._rng.integers(k, size=self.n_clusters - k)
                jitter = self._rng.normal(0, 1e-3, size=(self.n_clusters - k, X.shape[1]))
                centers = np.vstack([centers, centers[extra_idx] + jitter])
            self.cluster_centers_ = centers
            self._counts = np.zeros(self.n_clusters, dtype=np.int64)

        labels = self._nearest(X)
        # Sculley mini-batch update with per-centre learning rate 1/count.
        # The per-sample update with eta = 1/count is algebraically a
        # running mean, so the whole batch collapses to one aggregate
        # update per centre: c' = (c * n_old + sum(members)) / (n_old + m).
        k = self.n_clusters
        member_counts = np.bincount(labels, minlength=k)
        sums = np.zeros_like(self.cluster_centers_)
        np.add.at(sums, labels, X)
        touched = member_counts > 0
        n_old = self._counts[touched].astype(np.float64)
        m = member_counts[touched].astype(np.float64)
        self.cluster_centers_[touched] = (
            self.cluster_centers_[touched] * n_old[:, None] + sums[touched]
        ) / (n_old + m)[:, None]
        self._counts += member_counts

    def _score(self, X: np.ndarray) -> np.ndarray:
        d2 = self._distances_sq(X)
        return np.sqrt(d2.min(axis=1))

    # -- internals ---------------------------------------------------------

    def _distances_sq(self, X: np.ndarray) -> np.ndarray:
        """Squared Euclidean distances, (n_samples, n_clusters)."""
        C = self.cluster_centers_
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 — avoids the (n,k,d) tensor.
        x2 = (X * X).sum(axis=1)[:, None]
        c2 = (C * C).sum(axis=1)[None, :]
        d2 = x2 - 2.0 * (X @ C.T) + c2
        np.maximum(d2, 0.0, out=d2)  # guard tiny negatives from cancellation
        return d2

    def _nearest(self, X: np.ndarray) -> np.ndarray:
        return self._distances_sq(X).argmin(axis=1)

    def labels(self, X: np.ndarray) -> np.ndarray:
        """Cluster assignment for each sample."""
        if self.cluster_centers_ is None:
            raise ValidationError("model has not been fitted")
        X = self._validate(X, fitting=False)
        return self._nearest(X)

    def inertia(self, X: np.ndarray) -> float:
        """Sum of squared distances to the nearest centre."""
        if self.cluster_centers_ is None:
            raise ValidationError("model has not been fitted")
        X = self._validate(X, fitting=False)
        return float(self._distances_sq(X).min(axis=1).sum())
