"""Isolation forest (Liu, Ting & Zhou, ICDM 2008).

The paper's mid-complexity model: an ensemble of 100 random isolation
trees (the PyOD default the authors used). Each tree recursively splits a
subsample on a random feature at a random threshold; outliers are points
isolated in few splits. The anomaly score follows the original paper:

    s(x, n) = 2 ^ ( -E[h(x)] / c(n) )

where ``h(x)`` is the path length and ``c(n)`` the average path length of
an unsuccessful BST search, used both for normalisation and to credit
unresolved leaf nodes.

Trees are stored as flat arrays (feature, threshold, left, right,
node-size) and scored with a vectorised level-by-level descent, so scoring
a 10,000-point block through 100 trees stays NumPy-bound rather than
Python-bound.

Streaming behaviour: ``partial_fit`` refreshes a rotating subset of trees
from the newest batch, so the ensemble tracks drift while older trees
retain history.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseOutlierDetector
from repro.util.validation import check_in_range, check_positive

_EULER_GAMMA = 0.5772156649015329


def average_path_length(n) -> np.ndarray:
    """c(n): average unsuccessful-search path length in a BST of size n."""
    n = np.asarray(n, dtype=np.float64)
    out = np.zeros_like(n)
    mask2 = n == 2
    out[mask2] = 1.0
    mask = n > 2
    nm = n[mask]
    out[mask] = 2.0 * (np.log(nm - 1.0) + _EULER_GAMMA) - 2.0 * (nm - 1.0) / nm
    return out


class _IsolationTree:
    """One isolation tree in flat-array form.

    Arrays are preallocated for the worst case (2 * subsample - 1 nodes).
    ``feature < 0`` marks a leaf; leaves carry the node size so the scorer
    can add the c(size) path-length credit.
    """

    __slots__ = ("feature", "threshold", "left", "right", "size", "n_nodes", "max_depth")

    def __init__(self, X: np.ndarray, rng: np.random.Generator, max_depth: int) -> None:
        cap = 2 * X.shape[0] - 1 if X.shape[0] > 0 else 1
        self.feature = np.full(cap, -1, dtype=np.int32)
        self.threshold = np.zeros(cap, dtype=np.float64)
        self.left = np.full(cap, -1, dtype=np.int32)
        self.right = np.full(cap, -1, dtype=np.int32)
        self.size = np.zeros(cap, dtype=np.int32)
        self.n_nodes = 0
        self.max_depth = max_depth
        self._build(X, np.arange(X.shape[0]), 0, rng)

    def _new_node(self) -> int:
        idx = self.n_nodes
        self.n_nodes += 1
        return idx

    def _build(self, X: np.ndarray, idx: np.ndarray, depth: int, rng) -> int:
        node = self._new_node()
        self.size[node] = len(idx)
        if len(idx) <= 1 or depth >= self.max_depth:
            return node
        sub = X[idx]
        lo = sub.min(axis=0)
        hi = sub.max(axis=0)
        varying = np.flatnonzero(hi > lo)
        if varying.size == 0:  # all duplicate points — cannot split
            return node
        f = int(rng.choice(varying))
        t = float(rng.uniform(lo[f], hi[f]))
        go_left = sub[:, f] < t
        left_idx = idx[go_left]
        right_idx = idx[~go_left]
        if len(left_idx) == 0 or len(right_idx) == 0:
            return node  # degenerate split (t at boundary)
        self.feature[node] = f
        self.threshold[node] = t
        self.left[node] = self._build(X, left_idx, depth + 1, rng)
        self.right[node] = self._build(X, right_idx, depth + 1, rng)
        return node

    def path_lengths(self, X: np.ndarray) -> np.ndarray:
        """Vectorised path length h(x) for every row of X.

        All rows descend in lock-step for ``max_depth`` levels; rows that
        reach a leaf early self-loop there (leaf children point back to
        the leaf, depth stops incrementing). This avoids per-level
        active-set bookkeeping, which profiling showed dominated the
        original implementation.
        """
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int32)
        depth = np.zeros(n, dtype=np.float64)
        rows = np.arange(n)
        for _ in range(self.max_depth + 1):
            feat = self.feature[node]
            internal = feat >= 0
            if not internal.any():
                break
            vals = X[rows, np.where(internal, feat, 0)]
            goes_left = vals < self.threshold[node]
            children = np.where(goes_left, self.left[node], self.right[node])
            node = np.where(internal, children, node)
            depth += internal
        # Leaf credit: c(size) for points unresolved at their leaf.
        depth += average_path_length(self.size[node])
        return depth


class IsolationForest(BaseOutlierDetector):
    """Isolation-forest outlier detector with streaming tree refresh.

    Parameters
    ----------
    n_estimators:
        Ensemble size; the paper uses the PyOD default of 100.
    max_samples:
        Subsample size per tree (256, per the original algorithm).
    refresh_fraction:
        Fraction of trees rebuilt from each ``partial_fit`` batch.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_samples: int = 256,
        contamination: float = 0.01,
        refresh_fraction: float = 0.25,
        seed: int = 0,
    ) -> None:
        super().__init__(contamination=contamination)
        check_positive("n_estimators", n_estimators)
        check_positive("max_samples", max_samples)
        check_in_range("refresh_fraction", refresh_fraction, 0.0, 1.0)
        self.n_estimators = int(n_estimators)
        self.max_samples = int(max_samples)
        self.refresh_fraction = float(refresh_fraction)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._trees: list[_IsolationTree] = []
        self._refresh_cursor = 0
        self._fit_sample_size = self.max_samples

    @property
    def n_trees(self) -> int:
        return len(self._trees)

    def _reset(self) -> None:
        super()._reset()
        self._trees = []
        self._refresh_cursor = 0
        self._stacked = None
        self._rng = np.random.default_rng(self._seed)

    def _sample_size(self, n: int) -> int:
        return min(self.max_samples, n)

    def _build_tree(self, X: np.ndarray) -> _IsolationTree:
        m = self._sample_size(X.shape[0])
        self._fit_sample_size = m
        idx = self._rng.choice(X.shape[0], size=m, replace=False)
        max_depth = int(np.ceil(np.log2(max(m, 2))))
        return _IsolationTree(X[idx], self._rng, max_depth)

    def _fit_batch(self, X: np.ndarray) -> None:
        if not self._trees:
            self._trees = [self._build_tree(X) for _ in range(self.n_estimators)]
        else:
            # Streaming: rebuild a rotating ensemble slice on new data.
            n_refresh = max(1, int(self.n_estimators * self.refresh_fraction))
            for _ in range(n_refresh):
                self._trees[self._refresh_cursor] = self._build_tree(X)
                self._refresh_cursor = (self._refresh_cursor + 1) % self.n_estimators
        self._stacked = None  # invalidate the scoring cache

    # -- stacked scoring ----------------------------------------------------
    #
    # Scoring tree-by-tree costs ~T x levels small numpy calls; stacking
    # the ensemble into (T, max_nodes) arrays lets all samples descend
    # all trees in lock-step, one (n, T) gather per level. Profiling on
    # the paper's 10,000-point blocks showed this is the difference
    # between scoring dominating the pipeline and scoring being
    # comparable to the tree refresh.

    _stacked: tuple | None = None

    def _stack(self) -> tuple:
        if self._stacked is None:
            t_count = len(self._trees)
            max_nodes = max(t.n_nodes for t in self._trees)
            feature = np.full((t_count, max_nodes), -1, dtype=np.int32)
            threshold = np.zeros((t_count, max_nodes), dtype=np.float64)
            left = np.zeros((t_count, max_nodes), dtype=np.int32)
            right = np.zeros((t_count, max_nodes), dtype=np.int32)
            size = np.ones((t_count, max_nodes), dtype=np.int32)
            for i, tree in enumerate(self._trees):
                n = tree.n_nodes
                feature[i, :n] = tree.feature[:n]
                threshold[i, :n] = tree.threshold[:n]
                # Leaves self-loop so finished rows stay put.
                left[i, :n] = np.where(tree.left[:n] >= 0, tree.left[:n], np.arange(n))
                right[i, :n] = np.where(tree.right[:n] >= 0, tree.right[:n], np.arange(n))
                size[i, :n] = tree.size[:n]
            max_depth = max(t.max_depth for t in self._trees)
            self._stacked = (feature, threshold, left, right, size, max_depth)
        return self._stacked

    def _score(self, X: np.ndarray) -> np.ndarray:
        feature, threshold, left, right, size, max_depth = self._stack()
        n = X.shape[0]
        t_count = feature.shape[0]
        rows = np.arange(n)[:, None]
        tree_ix = np.arange(t_count)[None, :]
        node = np.zeros((n, t_count), dtype=np.int32)
        depth = np.zeros((n, t_count), dtype=np.int16)
        for _ in range(max_depth + 1):
            feat = feature[tree_ix, node]            # (n, T)
            internal = feat >= 0
            if not internal.any():
                break
            vals = X[rows, np.maximum(feat, 0)]
            goes_left = vals < threshold[tree_ix, node]
            children = np.where(goes_left, left[tree_ix, node], right[tree_ix, node])
            node = np.where(internal, children, node)
            depth += internal
        total = depth.sum(axis=1, dtype=np.float64)
        total += average_path_length(size[tree_ix, node]).sum(axis=1)
        mean_depth = total / t_count
        c = average_path_length(np.array([self._fit_sample_size]))[0]
        c = max(c, 1e-12)
        return np.power(2.0, -mean_depth / c)
