"""Auto-encoder outlier detector.

The paper's heaviest model: a dense auto-encoder with hidden layers
[64, 32, 32, 64] and "a total number of 11,552 parameters" on the
32-feature input. That count corresponds to PyOD's Keras construction,
which we replicate exactly: PyOD prepends and appends the input dimension
to the hidden layer list *and* adds a final output layer, so the stack for
``hidden_neurons=[64, 32, 32, 64]`` on 32 features is::

    input(32) -> Dense(32) -> Dense(64) -> Dense(32) -> Dense(32)
              -> Dense(64) -> Dense(32) -> Dense(32, output)

parameter count: 1056 + 2112 + 2080 + 1056 + 2112 + 2080 + 1056 = 11,552.

Outlier scoring uses the per-sample reconstruction error (L2 norm of the
residual), the standard auto-encoder anomaly criterion. Input is
standardised with an incrementally-updated :class:`StandardScaler`, which
mirrors PyOD's internal preprocessing and keeps the reconstruction loss
well-scaled for streaming data.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseOutlierDetector
from repro.ml.nn import Adam, Dense, MSELoss, Sequential
from repro.ml.preprocessing import StandardScaler
from repro.util.validation import ValidationError, check_positive


class AutoEncoder(BaseOutlierDetector):
    """Dense auto-encoder for streaming outlier detection.

    Parameters
    ----------
    hidden_neurons:
        Sizes of the hidden stack, PyOD-style (the input dimension is
        added around it automatically). Default matches the paper.
    epochs:
        Training epochs per ``fit``/``partial_fit`` batch. Streaming
        deployments use small values since every block triggers an update.
    batch_size, lr:
        Mini-batch size and Adam learning rate (Keras defaults).
    activation:
        Hidden activation; PyOD's default is ReLU.
    """

    def __init__(
        self,
        hidden_neurons: tuple = (64, 32, 32, 64),
        contamination: float = 0.01,
        epochs: int = 4,
        batch_size: int = 32,
        lr: float = 1e-3,
        activation: str = "relu",
        seed: int = 0,
    ) -> None:
        super().__init__(contamination=contamination)
        if not hidden_neurons:
            raise ValidationError("hidden_neurons must be non-empty")
        for h in hidden_neurons:
            check_positive("hidden layer size", h)
        check_positive("epochs", epochs)
        check_positive("batch_size", batch_size)
        check_positive("lr", lr)
        self.hidden_neurons = tuple(int(h) for h in hidden_neurons)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.activation = activation
        self._seed = seed
        self.network: Sequential | None = None
        self.scaler = StandardScaler()
        self._epoch_losses: list[float] = []

    # -- construction ------------------------------------------------------

    def _layer_sizes(self, n_features: int) -> list[int]:
        """PyOD-compatible layer sizes.

        PyOD builds a Dense layer for every entry of
        ``[n_features, *hidden_neurons, n_features]`` (including the first,
        which becomes an n->n layer on the input) and then appends one more
        output Dense(n_features). For 32 features and [64, 32, 32, 64] this
        yields exactly the paper's 11,552 parameters.
        """
        return [n_features, n_features, *self.hidden_neurons, n_features, n_features]

    def _build(self, n_features: int) -> Sequential:
        sizes = self._layer_sizes(n_features)
        layers = []
        rng = np.random.default_rng(self._seed)
        for i in range(len(sizes) - 1):
            is_output = i == len(sizes) - 2
            layers.append(
                Dense(
                    sizes[i],
                    sizes[i + 1],
                    activation=None if is_output else self.activation,
                    seed=int(rng.integers(2**31)),
                )
            )
        return Sequential(layers, loss=MSELoss(), optimizer=Adam(lr=self.lr))

    @property
    def n_params(self) -> int:
        """Trainable parameter count (11,552 for the paper's config)."""
        if self.network is None:
            raise ValidationError("model has not been built; call fit first")
        return self.network.n_params

    @property
    def training_history(self) -> list[float]:
        """Mean epoch losses accumulated over the model's lifetime."""
        return list(self._epoch_losses)

    # -- weights (for the parameter server) ---------------------------------

    def get_weights(self) -> dict:
        if self.network is None:
            raise ValidationError("model has no weights yet")
        return {
            "arrays": self.network.get_weights(),
            "scaler_mean": None if self.scaler.mean_ is None else self.scaler.mean_.copy(),
            "scaler_m2": None if self.scaler._m2 is None else self.scaler._m2.copy(),
            "scaler_n": self.scaler.n_samples_seen_,
        }

    def set_weights(self, weights: dict) -> None:
        arrays = weights["arrays"]
        if self.network is None:
            # Infer the input dimension from the first weight matrix.
            n_features = int(np.asarray(arrays[0]).shape[0])
            self.network = self._build(n_features)
            self._n_features = n_features
        self.network.set_weights(arrays)
        if weights.get("scaler_mean") is not None:
            self.scaler.mean_ = np.asarray(weights["scaler_mean"], dtype=np.float64)
            self.scaler._m2 = np.asarray(weights["scaler_m2"], dtype=np.float64)
            self.scaler.n_samples_seen_ = int(weights["scaler_n"])
        self._fitted = True

    # -- BaseOutlierDetector hooks ------------------------------------------

    def _reset(self) -> None:
        super()._reset()
        self.network = None
        self.scaler = StandardScaler()
        self._epoch_losses = []

    def _fit_batch(self, X: np.ndarray) -> None:
        if self.network is None:
            self.network = self._build(X.shape[1])
        self.scaler.partial_fit(X)
        Xs = self.scaler.transform(X)
        history = self.network.fit(
            Xs,
            Xs,
            epochs=self.epochs,
            batch_size=self.batch_size,
            seed=self._seed,
        )
        self._epoch_losses.extend(history)

    def _score(self, X: np.ndarray) -> np.ndarray:
        Xs = self.scaler.transform(X)
        recon = self.network.forward(Xs)
        return np.linalg.norm(Xs - recon, axis=1)

    def reconstruct(self, X: np.ndarray) -> np.ndarray:
        """Reconstruction of X in the original feature space."""
        if self.network is None:
            raise ValidationError("model has not been fitted")
        X = self._validate(X, fitting=False)
        Xs = self.scaler.transform(X)
        return self.scaler.inverse_transform(self.network.forward(Xs))
