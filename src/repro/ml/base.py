"""Common interface for streaming outlier detectors.

The pipeline's processing stages treat models uniformly: each block of
data is scored with :meth:`decision_function` (higher = more anomalous)
and the model is then updated with :meth:`partial_fit` — the paper's
"model is updated based on the incoming data" streaming pattern.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.util.validation import ValidationError, check_in_range


class NotFittedError(RuntimeError):
    """Raised when scoring is attempted before any data has been seen."""


class BaseOutlierDetector(abc.ABC):
    """Abstract base class for streaming outlier detectors.

    Subclasses implement :meth:`_fit_batch` and :meth:`_score`; the base
    class handles input validation, fitted-state tracking and the
    contamination-quantile decision threshold.
    """

    def __init__(self, contamination: float = 0.01) -> None:
        check_in_range("contamination", contamination, 0.0, 0.5)
        self.contamination = float(contamination)
        self._fitted = False
        self._n_features: int | None = None
        self._n_samples_seen = 0
        self._threshold: float | None = None

    # -- public API -----------------------------------------------------

    @property
    def fitted(self) -> bool:
        return self._fitted

    @property
    def n_features(self) -> int | None:
        return self._n_features

    @property
    def n_samples_seen(self) -> int:
        return self._n_samples_seen

    @property
    def threshold(self) -> float | None:
        """Current anomaly-score decision threshold (set during fit)."""
        return self._threshold

    def fit(self, X: np.ndarray) -> "BaseOutlierDetector":
        """Fit the model from scratch on *X*."""
        X = self._validate(X, fitting=True)
        self._reset()
        self._fit_batch(X)
        self._fitted = True
        self._n_samples_seen = X.shape[0]
        self._update_threshold(X)
        return self

    def partial_fit(self, X: np.ndarray) -> "BaseOutlierDetector":
        """Update the model incrementally with the batch *X*."""
        X = self._validate(X, fitting=not self._fitted)
        self._fit_batch(X)
        self._fitted = True
        self._n_samples_seen += X.shape[0]
        self._update_threshold(X)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Anomaly score per sample; higher means more anomalous."""
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        X = self._validate(X, fitting=False)
        return self._score(X)

    def decision_function_many(self, blocks) -> list[np.ndarray]:
        """Score several blocks through ONE vectorized ``_score`` call.

        The batched consume path's scoring primitive: the blocks are
        stacked into a single ``(sum(n_i), d)`` matrix, scored once, and
        the per-row scores are split back out per block. One model/numpy
        dispatch per poll batch instead of one per message — the
        fixed-cost side of scoring (ensemble stacking, layer dispatch,
        threshold bookkeeping) is paid once for the whole batch.
        """
        from repro.data.serde import split_rows, stack_blocks

        stacked, offsets = stack_blocks(blocks)
        scores = self.decision_function(stacked)
        return split_rows(scores, offsets)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Binary labels: 1 for outliers, 0 for inliers."""
        scores = self.decision_function(X)
        if self._threshold is None:
            raise NotFittedError("decision threshold not available")
        return (scores > self._threshold).astype(np.int8)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        self.fit(X)
        return self.predict(X)

    # -- extension points -------------------------------------------------

    @abc.abstractmethod
    def _fit_batch(self, X: np.ndarray) -> None:
        """Incorporate the batch into the model."""

    @abc.abstractmethod
    def _score(self, X: np.ndarray) -> np.ndarray:
        """Return raw anomaly scores for *X* (model is fitted)."""

    def _reset(self) -> None:
        """Discard learned state before a from-scratch fit."""
        self._fitted = False
        self._n_samples_seen = 0
        self._threshold = None

    # -- helpers ----------------------------------------------------------

    def _validate(self, X: np.ndarray, fitting: bool) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] == 0:
            raise ValidationError("X must contain at least one sample")
        if not np.isfinite(X).all():
            raise ValidationError("X contains NaN or infinite values")
        if self._n_features is None:
            if not fitting:
                raise NotFittedError(f"{type(self).__name__} has not been fitted")
            self._n_features = X.shape[1]
        elif X.shape[1] != self._n_features:
            raise ValidationError(
                f"X has {X.shape[1]} features, model was fitted with {self._n_features}"
            )
        return X

    #: Rows used to (re-)estimate the decision threshold after a fit.
    #: Scoring the full batch again just for the quantile doubled the
    #: per-block cost of expensive models; a bounded sample estimates the
    #: same quantile with negligible error.
    _THRESHOLD_SAMPLE = 1024

    def _update_threshold(self, X: np.ndarray) -> None:
        if X.shape[0] > self._THRESHOLD_SAMPLE:
            idx = np.linspace(0, X.shape[0] - 1, self._THRESHOLD_SAMPLE).astype(int)
            X = X[idx]
        scores = self._score(X)
        self._threshold = float(np.quantile(scores, 1.0 - self.contamination))

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"{type(self).__name__}(contamination={self.contamination}, {state})"
