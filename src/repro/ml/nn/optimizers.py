"""First-order optimizers.

The optimizer owns no parameters; it is bound to a parameter/gradient
list at :meth:`attach` time and updates them in place on :meth:`step` —
the usual structure that lets a network hot-swap optimizers.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_in_range, check_positive


class Optimizer:
    """Base optimizer: bind to parameter/gradient lists, then step()."""

    def __init__(self) -> None:
        self._params: list[np.ndarray] = []
        self._grads: list[np.ndarray] = []

    def attach(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        self._params = params
        self._grads = grads
        self._on_attach()

    def _on_attach(self) -> None:
        """Hook for per-parameter state allocation."""

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__()
        check_positive("lr", lr)
        check_in_range("momentum", momentum, 0.0, 1.0)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: list[np.ndarray] = []

    def _on_attach(self) -> None:
        self._velocity = [np.zeros_like(p) for p in self._params]

    def step(self) -> None:
        for p, g, v in zip(self._params, self._grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    Defaults match Keras (lr=1e-3, beta1=0.9, beta2=0.999), since the
    paper's auto-encoder was trained with Keras defaults via PyOD.
    """

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__()
        check_positive("lr", lr)
        check_in_range("beta1", beta1, 0.0, 1.0)
        check_in_range("beta2", beta2, 0.0, 1.0)
        check_positive("eps", eps)
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: list[np.ndarray] = []
        self._v: list[np.ndarray] = []
        self._t = 0

    def _on_attach(self) -> None:
        self._m = [np.zeros_like(p) for p in self._params]
        self._v = [np.zeros_like(p) for p in self._params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self._params, self._grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / bc1
            v_hat = v / bc2
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
