"""Trainable layers.

Only dense (fully-connected) layers are needed for the paper's
auto-encoder; the ``Layer`` interface keeps the container generic.
"""

from __future__ import annotations

import numpy as np

from repro.ml.nn.activations import Activation, Identity, activation_by_name
from repro.util.validation import check_positive


class Layer:
    """Interface every layer implements."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop *grad_out* and stash parameter gradients."""
        raise NotImplementedError

    @property
    def params(self) -> list[np.ndarray]:
        return []

    @property
    def grads(self) -> list[np.ndarray]:
        return []

    @property
    def n_params(self) -> int:
        return sum(p.size for p in self.params)


class Dense(Layer):
    """Fully-connected layer: ``y = act(x @ W + b)``.

    Weights use Glorot-uniform initialisation (the Keras default the
    paper's PyOD auto-encoder inherits), so training dynamics are
    comparable.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Activation | str | None = None,
        seed: int | None = None,
    ) -> None:
        check_positive("in_features", in_features)
        check_positive("out_features", out_features)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        if activation is None:
            activation = Identity()
        elif isinstance(activation, str):
            activation = activation_by_name(activation)
        self.activation = activation

        rng = np.random.default_rng(seed)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.W = rng.uniform(-limit, limit, size=(in_features, out_features))
        self.b = np.zeros(out_features, dtype=np.float64)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None
        self._z: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._z = x @ self.W + self.b
        return self.activation.forward(self._z)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None or self._z is None:
            raise RuntimeError("backward() called before forward()")
        grad_z = self.activation.backward(self._z, grad_out)
        self.dW[...] = self._x.T @ grad_z
        self.db[...] = grad_z.sum(axis=0)
        return grad_z @ self.W.T

    @property
    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.dW, self.db]

    def __repr__(self) -> str:
        return (
            f"Dense({self.in_features} -> {self.out_features}, "
            f"activation={self.activation.name})"
        )
