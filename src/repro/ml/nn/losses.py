"""Loss functions (value + gradient)."""

from __future__ import annotations

import numpy as np


class Loss:
    """Loss interface: scalar value and gradient w.r.t. predictions."""

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class MSELoss(Loss):
    """Mean squared error averaged over all elements.

    The gradient is ``2 (pred - target) / N`` with N the total element
    count, matching the averaging in :meth:`value` so gradient checking is
    exact.
    """

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        diff = pred - target
        return float(np.mean(diff * diff))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        return 2.0 * (pred - target) / pred.size
