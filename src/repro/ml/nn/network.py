"""Sequential network container with mini-batch training."""

from __future__ import annotations

import numpy as np

from repro.ml.nn.layers import Layer
from repro.ml.nn.losses import Loss, MSELoss
from repro.ml.nn.optimizers import Adam, Optimizer
from repro.util.validation import check_positive


class Sequential:
    """A stack of layers trained with backprop.

    >>> from repro.ml.nn import Dense
    >>> net = Sequential([Dense(4, 2, "relu", seed=0), Dense(2, 4, seed=0)])
    >>> net.n_params  # (4*2+2) + (2*4+4)
    22
    """

    def __init__(
        self,
        layers: list[Layer],
        loss: Loss | None = None,
        optimizer: Optimizer | None = None,
    ) -> None:
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)
        self.loss = loss if loss is not None else MSELoss()
        self.optimizer = optimizer if optimizer is not None else Adam()
        self._attach_optimizer()

    def _attach_optimizer(self) -> None:
        params: list[np.ndarray] = []
        grads: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.params)
            grads.extend(layer.grads)
        self.optimizer.attach(params, grads)

    @property
    def n_params(self) -> int:
        """Total trainable parameter count."""
        return sum(layer.n_params for layer in self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    # Keras-style alias used by callers that just want inference.
    predict = forward

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def train_batch(self, x: np.ndarray, target: np.ndarray) -> float:
        """One forward/backward/update step; returns the batch loss."""
        pred = self.forward(x)
        loss_value = self.loss.value(pred, target)
        grad = self.loss.gradient(pred, target)
        self.backward(grad)
        self.optimizer.step()
        return loss_value

    def fit(
        self,
        x: np.ndarray,
        target: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        shuffle: bool = True,
        seed: int | None = None,
    ) -> list[float]:
        """Mini-batch training; returns per-epoch mean losses."""
        check_positive("epochs", epochs)
        check_positive("batch_size", batch_size)
        x = np.asarray(x, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if x.shape[0] != target.shape[0]:
            raise ValueError("x and target must have the same number of rows")
        rng = np.random.default_rng(seed)
        n = x.shape[0]
        history: list[float] = []
        for _ in range(int(epochs)):
            order = rng.permutation(n) if shuffle else np.arange(n)
            losses = []
            for start in range(0, n, int(batch_size)):
                idx = order[start : start + int(batch_size)]
                losses.append(self.train_batch(x[idx], target[idx]))
            history.append(float(np.mean(losses)))
        return history

    # -- weight (de)serialization for the parameter server ---------------

    def get_weights(self) -> list[np.ndarray]:
        """Copies of all parameter arrays, in layer order."""
        out: list[np.ndarray] = []
        for layer in self.layers:
            out.extend(p.copy() for p in layer.params)
        return out

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`get_weights`."""
        flat: list[np.ndarray] = []
        for layer in self.layers:
            flat.extend(layer.params)
        if len(weights) != len(flat):
            raise ValueError(
                f"expected {len(flat)} weight arrays, got {len(weights)}"
            )
        for p, w in zip(flat, weights):
            w = np.asarray(w, dtype=np.float64)
            if w.shape != p.shape:
                raise ValueError(f"shape mismatch: {w.shape} vs {p.shape}")
            p[...] = w

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}], n_params={self.n_params})"
