"""A minimal dense neural-network stack (NumPy only).

Provides exactly what the paper's auto-encoder workload needs: dense
layers, the standard activations, MSE loss, SGD/Adam optimizers and a
``Sequential`` container with mini-batch training. The implementation is
deliberately small but complete — forward, reverse-mode backward, weight
serialization (for the parameter server) and gradient checking used by the
test suite.
"""

from repro.ml.nn.layers import Dense, Layer
from repro.ml.nn.activations import ReLU, Sigmoid, Tanh, Identity, activation_by_name
from repro.ml.nn.losses import MSELoss, Loss
from repro.ml.nn.optimizers import SGD, Adam, Optimizer
from repro.ml.nn.network import Sequential

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "activation_by_name",
    "Loss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "Sequential",
]
