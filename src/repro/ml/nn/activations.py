"""Activation functions with forward and gradient evaluation.

Each activation is stateless: ``forward`` maps pre-activations to
activations and ``backward`` maps upstream gradients through the local
Jacobian (diagonal for all elementwise activations here).
"""

from __future__ import annotations

import numpy as np


class Activation:
    """Base class; subclasses implement forward/backward on ndarray."""

    name = "base"

    def forward(self, z: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, z: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. z, given the gradient w.r.t. forward(z)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Identity(Activation):
    """Pass-through activation (used on output layers)."""

    name = "identity"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return z

    def backward(self, z: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class ReLU(Activation):
    """Rectified linear unit: max(z, 0)."""

    name = "relu"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    def backward(self, z: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (z > 0.0)


class Sigmoid(Activation):
    """Logistic sigmoid with numerically stable evaluation."""

    name = "sigmoid"

    def forward(self, z: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise form avoids overflow warnings.
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    def backward(self, z: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        s = self.forward(z)
        return grad_out * s * (1.0 - s)


class Tanh(Activation):
    """Hyperbolic tangent activation."""

    name = "tanh"

    def forward(self, z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    def backward(self, z: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        t = np.tanh(z)
        return grad_out * (1.0 - t * t)


_REGISTRY = {cls.name: cls for cls in (Identity, ReLU, Sigmoid, Tanh)}


def activation_by_name(name: str) -> Activation:
    """Instantiate an activation from its string name."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
