"""Streaming feature scaling.

The processing stages standardise each block before model update/scoring.
:class:`StandardScaler` supports incremental fitting via Welford/Chan
parallel moment merging, so a long stream can be standardised with stable
statistics without materialising it.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import ValidationError


class StandardScaler:
    """Zero-mean / unit-variance scaling with incremental updates.

    >>> s = StandardScaler()
    >>> import numpy as np
    >>> _ = s.partial_fit(np.array([[1.0], [3.0]]))
    >>> s.mean_[0]
    2.0
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = bool(with_mean)
        self.with_std = bool(with_std)
        self.n_samples_seen_ = 0
        self.mean_: np.ndarray | None = None
        self._m2: np.ndarray | None = None  # sum of squared deviations

    @property
    def var_(self) -> np.ndarray | None:
        if self._m2 is None or self.n_samples_seen_ == 0:
            return None
        return self._m2 / self.n_samples_seen_

    @property
    def scale_(self) -> np.ndarray | None:
        var = self.var_
        if var is None:
            return None
        scale = np.sqrt(var)
        scale[scale == 0.0] = 1.0  # constant features pass through
        return scale

    def fit(self, X: np.ndarray) -> "StandardScaler":
        self.n_samples_seen_ = 0
        self.mean_ = None
        self._m2 = None
        return self.partial_fit(X)

    def partial_fit(self, X: np.ndarray) -> "StandardScaler":
        X = self._check(X)
        n_b = X.shape[0]
        mean_b = X.mean(axis=0)
        m2_b = ((X - mean_b) ** 2).sum(axis=0)

        if self.mean_ is None:
            self.mean_ = mean_b
            self._m2 = m2_b
            self.n_samples_seen_ = n_b
        else:
            # Chan et al. parallel merge of (count, mean, M2) moments.
            n_a = self.n_samples_seen_
            delta = mean_b - self.mean_
            total = n_a + n_b
            self.mean_ = self.mean_ + delta * (n_b / total)
            self._m2 = self._m2 + m2_b + delta**2 * (n_a * n_b / total)
            self.n_samples_seen_ = total
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise ValidationError("StandardScaler has not been fitted")
        X = self._check(X)
        out = X.astype(np.float64, copy=True)
        if self.with_mean:
            out -= self.mean_
        if self.with_std:
            out /= self.scale_
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise ValidationError("StandardScaler has not been fitted")
        X = self._check(X)
        out = X.astype(np.float64, copy=True)
        if self.with_std:
            out *= self.scale_
        if self.with_mean:
            out += self.mean_
        return out

    def _check(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError(f"X must be 2-D, got shape {X.shape}")
        if self.mean_ is not None and X.shape[1] != self.mean_.shape[0]:
            raise ValidationError(
                f"X has {X.shape[1]} features, scaler was fitted with {self.mean_.shape[0]}"
            )
        return X
