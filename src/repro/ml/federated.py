"""Federated learning across the continuum (paper future work).

The paper's future work names federated learning as a target
edge-to-cloud scenario. This module implements the coordination layer on
top of the existing substrates: each edge site trains a local model on
its own stream (data never leaves the site), publishes weight updates to
the parameter service, and an aggregator merges them into a global model
that is pushed back for the next round.

Two aggregation strategies:

- :class:`FedAvgAggregator` — weighted averaging of parameters
  (McMahan et al., 2017), applicable to the auto-encoder's dense weights
  and to k-means centres,
- :class:`KMeansCoresetAggregator` — merges per-site centres by
  clustering the union of centres weighted by their support counts,
  which is the natural federation of mini-batch k-means.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.kmeans import StreamingKMeans, kmeans_plus_plus
from repro.params.client import ParameterClient
from repro.params.store import KeyNotFound
from repro.util.validation import ValidationError, check_positive


class FedAvgAggregator:
    """Support-weighted parameter averaging.

    Each client update is ``(weight_arrays, n_samples)``; the aggregate
    is the per-array weighted mean. All clients must share one
    architecture.
    """

    def aggregate(self, updates: Sequence[tuple]) -> list[np.ndarray]:
        if not updates:
            raise ValidationError("no client updates to aggregate")
        shapes = [tuple(a.shape for a in arrays) for arrays, _ in updates]
        if len(set(shapes)) != 1:
            raise ValidationError("client updates have mismatched architectures")
        total = float(sum(n for _, n in updates))
        if total <= 0:
            raise ValidationError("client updates carry no samples")
        n_arrays = len(updates[0][0])
        out = []
        for i in range(n_arrays):
            acc = np.zeros_like(np.asarray(updates[0][0][i], dtype=np.float64))
            for arrays, n in updates:
                acc += np.asarray(arrays[i], dtype=np.float64) * (n / total)
            out.append(acc)
        return out


class KMeansCoresetAggregator:
    """Federates k-means by clustering the weighted union of centres.

    Every site contributes its centres with their per-centre support
    counts; the union is re-clustered into ``n_clusters`` global centres
    with support-weighted Lloyd iterations.
    """

    def __init__(self, n_clusters: int = 25, iterations: int = 10, seed: int = 0) -> None:
        check_positive("n_clusters", n_clusters)
        check_positive("iterations", iterations)
        self.n_clusters = int(n_clusters)
        self.iterations = int(iterations)
        self._rng = np.random.default_rng(seed)

    def aggregate(self, updates: Sequence[dict]) -> dict:
        """Merge k-means weight dicts (as from ``get_weights``)."""
        if not updates:
            raise ValidationError("no client updates to aggregate")
        centers = np.vstack([np.asarray(u["cluster_centers"], dtype=np.float64) for u in updates])
        weights = np.concatenate([np.asarray(u["counts"], dtype=np.float64) for u in updates])
        # Centres that never absorbed data carry no information.
        mask = weights > 0
        if not mask.any():
            raise ValidationError("all client centres are empty")
        centers, weights = centers[mask], weights[mask]

        k = min(self.n_clusters, centers.shape[0])
        global_centers = kmeans_plus_plus(centers, k, self._rng)
        for _ in range(self.iterations):
            d2 = ((centers[:, None, :] - global_centers[None, :, :]) ** 2).sum(axis=2)
            assign = d2.argmin(axis=1)
            for j in range(k):
                members = assign == j
                if members.any():
                    w = weights[members]
                    global_centers[j] = (centers[members] * w[:, None]).sum(axis=0) / w.sum()
        if k < self.n_clusters:
            extra = global_centers[self._rng.integers(k, size=self.n_clusters - k)]
            global_centers = np.vstack([global_centers, extra])

        counts = np.zeros(self.n_clusters, dtype=np.int64)
        d2 = ((centers[:, None, :] - global_centers[None, :, :]) ** 2).sum(axis=2)
        assign = d2.argmin(axis=1)
        np.add.at(counts, assign, weights.astype(np.int64))
        return {"cluster_centers": global_centers, "counts": counts}


class FederatedCoordinator:
    """Runs federation rounds through the parameter service.

    Key layout (within the client's namespace)::

        fl/round              current round number (int)
        fl/global             aggregated global weights
        fl/update/<site>      per-site updates for the current round
    """

    def __init__(
        self,
        params: ParameterClient,
        aggregator,
        expected_sites: Sequence[str],
    ) -> None:
        if not expected_sites:
            raise ValidationError("expected_sites must be non-empty")
        self._params = params
        self._aggregator = aggregator
        self._sites = list(expected_sites)
        self._round = 0
        self._params.set("fl/round", 0)

    @property
    def round_number(self) -> int:
        return self._round

    def submit_update(self, site: str, update, n_samples: int | None = None) -> None:
        """Called by a site after local training for the current round."""
        if site not in self._sites:
            raise ValidationError(f"unknown site {site!r}")
        payload = {"update": update, "n_samples": n_samples, "round": self._round}
        self._params.set(f"fl/update/{site}", payload)

    def pending_sites(self) -> list[str]:
        """Sites that have not yet reported for the current round.

        Uses the client's version-aware cache: coordinators poll this
        while waiting for stragglers, and a site that has not re-published
        since the last poll must not re-pay its full update transfer.
        """
        missing = []
        for site in self._sites:
            try:
                payload = self._params.get_cached(f"fl/update/{site}").value
            except KeyNotFound:
                missing.append(site)
                continue
            if payload is None or payload.get("round") != self._round:
                missing.append(site)
        return missing

    def aggregate_round(self):
        """Aggregate all site updates, publish the global model,
        advance the round. Returns the global weights."""
        missing = self.pending_sites()
        if missing:
            raise ValidationError(f"sites have not reported: {missing}")
        raw = [self._params.get_value(f"fl/update/{site}") for site in self._sites]
        if isinstance(self._aggregator, FedAvgAggregator):
            updates = [(r["update"], r["n_samples"] or 1) for r in raw]
        else:
            updates = [r["update"] for r in raw]
        global_weights = self._aggregator.aggregate(updates)
        self._round += 1
        self._params.set("fl/global", {"round": self._round, "weights": global_weights})
        self._params.set("fl/round", self._round)
        return global_weights

    def fetch_global(self, after_round: int = 0, timeout: float | None = None):
        """Blocking fetch of a global model newer than *after_round*."""
        entry = self._params.watch("fl/global", after_version=after_round, timeout=timeout)
        return None if entry is None else entry.value


def local_kmeans_round(
    model: StreamingKMeans,
    blocks: Sequence[np.ndarray],
    global_weights: dict | None = None,
) -> dict:
    """One site-local training round: adopt global weights, train on the
    site's blocks, return the updated weights."""
    if global_weights is not None:
        model.set_weights(global_weights)
    for block in blocks:
        model.partial_fit(np.asarray(block))
    return model.get_weights()
