"""Detection-quality metrics.

Implemented from scratch (no scikit-learn available): ROC AUC via the
Mann-Whitney U statistic, precision-at-k, and the contamination-quantile
threshold helper shared by the detectors.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import ValidationError, check_in_range, check_positive


def roc_auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve for binary labels and continuous scores.

    Computed as the normalised Mann-Whitney U statistic with midrank tie
    handling, which is exactly equivalent to the trapezoidal ROC AUC.
    """
    y = np.asarray(y_true).ravel()
    s = np.asarray(scores, dtype=np.float64).ravel()
    if y.shape != s.shape:
        raise ValidationError(f"shape mismatch: {y.shape} vs {s.shape}")
    pos = y == 1
    neg = y == 0
    n_pos = int(pos.sum())
    n_neg = int(neg.sum())
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("roc_auc_score needs both positive and negative samples")
    # Midranks: average rank for tied scores.
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty_like(s)
    sorted_s = s[order]
    ranks[order] = np.arange(1, len(s) + 1, dtype=np.float64)
    # Average ranks within tie groups.
    i = 0
    while i < len(s):
        j = i
        while j + 1 < len(s) and sorted_s[j + 1] == sorted_s[i]:
            j += 1
        if j > i:
            avg = (i + j + 2) / 2.0  # ranks are 1-based
            ranks[order[i : j + 1]] = avg
        i = j + 1
    rank_sum_pos = ranks[pos].sum()
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def precision_at_k(y_true: np.ndarray, scores: np.ndarray, k: int) -> float:
    """Fraction of true outliers among the k highest-scoring samples."""
    check_positive("k", k)
    y = np.asarray(y_true).ravel()
    s = np.asarray(scores, dtype=np.float64).ravel()
    if y.shape != s.shape:
        raise ValidationError(f"shape mismatch: {y.shape} vs {s.shape}")
    k = int(min(k, len(s)))
    top = np.argpartition(-s, k - 1)[:k]
    return float((y[top] == 1).mean())


def contamination_threshold(scores: np.ndarray, contamination: float) -> float:
    """Score threshold above which the top *contamination* fraction lies."""
    check_in_range("contamination", contamination, 0.0, 0.5)
    s = np.asarray(scores, dtype=np.float64).ravel()
    if s.size == 0:
        raise ValidationError("scores must be non-empty")
    return float(np.quantile(s, 1.0 - contamination))
