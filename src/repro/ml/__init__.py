"""Machine-learning workloads used in the paper's evaluation.

From-scratch NumPy implementations of the three streaming outlier
detectors evaluated in section III:

- :class:`StreamingKMeans` — mini-batch k-means with 25 clusters
  (distance-to-nearest-centre anomaly score),
- :class:`IsolationForest` — 100-tree ensemble, PyOD-compatible defaults,
- :class:`AutoEncoder` — dense auto-encoder replicating PyOD's
  construction for hidden layers [64, 32, 32, 64] on 32 features, which
  yields exactly the paper's 11,552 trainable parameters.

All detectors share the :class:`BaseOutlierDetector` interface:
``fit`` / ``partial_fit`` / ``decision_function`` / ``predict``.
"""

from repro.ml.base import BaseOutlierDetector, NotFittedError
from repro.ml.kmeans import StreamingKMeans
from repro.ml.iforest import IsolationForest
from repro.ml.autoencoder import AutoEncoder
from repro.ml.preprocessing import StandardScaler
from repro.ml.metrics import roc_auc_score, precision_at_k, contamination_threshold

__all__ = [
    "BaseOutlierDetector",
    "NotFittedError",
    "StreamingKMeans",
    "IsolationForest",
    "AutoEncoder",
    "StandardScaler",
    "roc_auc_score",
    "precision_at_k",
    "contamination_threshold",
]
