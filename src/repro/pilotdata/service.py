"""The Pilot-Data service: placement, replication, affinity."""

from __future__ import annotations

import threading

from repro.netem.topology import ContinuumTopology
from repro.pilotdata.dataunit import DataUnit, DataUnitState
from repro.util.validation import ValidationError, check_positive


class StorageError(RuntimeError):
    """Capacity exhausted or invalid storage operation."""


class StorageSite:
    """Bookkeeping for one site's storage pool."""

    def __init__(self, name: str, capacity_bytes: float) -> None:
        if not name:
            raise ValidationError("site name must be non-empty")
        check_positive("capacity_bytes", capacity_bytes)
        self.name = name
        self.capacity_bytes = float(capacity_bytes)
        self.used_bytes = 0.0
        self._units: set = set()

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    def holds(self, unit_id: str) -> bool:
        return unit_id in self._units

    def _admit(self, unit: DataUnit) -> None:
        if unit.size_bytes > self.free_bytes:
            raise StorageError(
                f"site {self.name!r} has {self.free_bytes / 1e6:.1f} MB free, "
                f"unit {unit.name!r} needs {unit.size_bytes / 1e6:.1f} MB"
            )
        self.used_bytes += unit.size_bytes
        self._units.add(unit.unit_id)

    def _evict(self, unit: DataUnit) -> None:
        if unit.unit_id in self._units:
            self._units.discard(unit.unit_id)
            self.used_bytes -= unit.size_bytes

    def stats(self) -> dict:
        return {
            "site": self.name,
            "capacity_mb": round(self.capacity_bytes / 1e6, 1),
            "used_mb": round(self.used_bytes / 1e6, 1),
            "units": len(self._units),
        }


class PilotDataService:
    """Manages data units across continuum storage sites.

    Parameters
    ----------
    topology:
        Optional :class:`ContinuumTopology`; replication then pays the
        corresponding link costs and affinity queries use routed RTTs.
        Without a topology, transfers are free and affinity falls back to
        "any replica".
    """

    def __init__(self, topology: ContinuumTopology | None = None) -> None:
        self._topology = topology
        self._sites: dict[str, StorageSite] = {}
        self._units: dict[str, DataUnit] = {}
        self._by_name: dict[str, str] = {}
        self._lock = threading.RLock()
        self.bytes_transferred = 0
        self.transfer_seconds = 0.0

    # -- site management ------------------------------------------------------

    def register_site(self, name: str, capacity_bytes: float) -> StorageSite:
        with self._lock:
            if name in self._sites:
                raise ValidationError(f"storage site {name!r} already registered")
            if self._topology is not None:
                self._topology.site(name)  # must exist in the topology
            site = StorageSite(name, capacity_bytes)
            self._sites[name] = site
            return site

    def site(self, name: str) -> StorageSite:
        with self._lock:
            try:
                return self._sites[name]
            except KeyError:
                raise ValidationError(f"unknown storage site {name!r}") from None

    # -- unit lifecycle -----------------------------------------------------------

    def put(self, name: str, blocks, site: str, metadata: dict | None = None) -> DataUnit:
        """Create a data unit with its first replica at *site*."""
        with self._lock:
            if name in self._by_name:
                raise ValidationError(f"data unit {name!r} already exists")
            storage = self.site(site)
            unit = DataUnit(name=name, blocks=tuple(blocks), metadata=dict(metadata or {}))
            storage._admit(unit)
            unit.replicas.add(site)
            unit.state = DataUnitState.AVAILABLE
            self._units[unit.unit_id] = unit
            self._by_name[name] = unit.unit_id
            return unit

    def get(self, name: str) -> DataUnit:
        with self._lock:
            unit_id = self._by_name.get(name)
            if unit_id is None:
                raise ValidationError(f"unknown data unit {name!r}")
            return self._units[unit_id]

    def list_units(self, site: str | None = None) -> list[DataUnit]:
        with self._lock:
            units = [u for u in self._units.values() if u.state is DataUnitState.AVAILABLE]
        if site is not None:
            units = [u for u in units if site in u.replicas]
        return sorted(units, key=lambda u: u.name)

    def delete(self, name: str) -> None:
        """Remove the unit from every replica site."""
        with self._lock:
            unit = self.get(name)
            for site_name in list(unit.replicas):
                self._sites[site_name]._evict(unit)
            unit.replicas.clear()
            unit.state = DataUnitState.DELETED
            del self._by_name[name]
            del self._units[unit.unit_id]

    # -- replication -----------------------------------------------------------------

    def replicate(self, name: str, to_site: str) -> float:
        """Copy the unit to *to_site*; returns modelled transfer seconds.

        The source replica is the one with the cheapest estimated
        transfer to the destination.
        """
        with self._lock:
            unit = self.get(name)
            dest = self.site(to_site)
            if to_site in unit.replicas:
                return 0.0
            if not unit.replicas:
                raise StorageError(f"unit {name!r} has no live replica")
            source = self._closest_replica(unit, to_site)
            dest._admit(unit)
            unit.state = DataUnitState.TRANSFERRING
        try:
            seconds = 0.0
            if self._topology is not None:
                link = self._topology.link(source, to_site)
                seconds = link.transfer(unit.size_bytes)
        except ConnectionError:
            with self._lock:
                dest._evict(unit)
                unit.state = DataUnitState.AVAILABLE
            raise
        with self._lock:
            unit.replicas.add(to_site)
            unit.state = DataUnitState.AVAILABLE
            self.bytes_transferred += unit.size_bytes
            self.transfer_seconds += seconds
        return seconds

    def drop_replica(self, name: str, site: str) -> None:
        """Remove one replica (the last replica cannot be dropped)."""
        with self._lock:
            unit = self.get(name)
            if site not in unit.replicas:
                raise ValidationError(f"unit {name!r} has no replica at {site!r}")
            if len(unit.replicas) == 1:
                raise StorageError(
                    f"refusing to drop the last replica of {name!r}; use delete()"
                )
            unit.replicas.discard(site)
            self._sites[site]._evict(unit)

    # -- affinity ----------------------------------------------------------------------

    def _closest_replica(self, unit: DataUnit, to_site: str) -> str:
        replicas = sorted(unit.replicas)
        if self._topology is None or to_site in unit.replicas:
            return to_site if to_site in unit.replicas else replicas[0]
        return min(
            replicas,
            key=lambda r: self._topology.transfer_time_estimate(r, to_site, unit.size_bytes),
        )

    def closest_replica(self, name: str, compute_site: str) -> tuple:
        """``(site, estimated_fetch_seconds)`` for reading the unit from
        *compute_site* — the affinity signal for placement decisions."""
        with self._lock:
            unit = self.get(name)
            if not unit.replicas:
                raise StorageError(f"unit {name!r} has no live replica")
            if compute_site in unit.replicas:
                return compute_site, 0.0
            if self._topology is None:
                return sorted(unit.replicas)[0], 0.0
            best = self._closest_replica(unit, compute_site)
            cost = self._topology.transfer_time_estimate(
                best, compute_site, unit.size_bytes
            )
            return best, cost

    def stats(self) -> dict:
        with self._lock:
            return {
                "sites": {n: s.stats() for n, s in self._sites.items()},
                "units": len(self._units),
                "bytes_transferred": self.bytes_transferred,
                "transfer_seconds": round(self.transfer_seconds, 6),
            }
