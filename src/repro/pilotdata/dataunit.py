"""Data units: the unit of distributed data management."""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

import numpy as np

from repro.util.ids import new_id
from repro.util.validation import ValidationError


class DataUnitState(enum.Enum):
    """Lifecycle of a data unit."""

    NEW = "new"
    TRANSFERRING = "transferring"
    AVAILABLE = "available"
    DELETED = "deleted"


@dataclass
class DataUnit:
    """A named, immutable collection of data blocks.

    The unit is the granularity of placement and replication; blocks are
    float64 arrays (the same blocks the streaming pipeline moves, here
    managed at rest). ``replicas`` tracks which sites hold a copy.
    """

    name: str
    blocks: tuple = ()
    unit_id: str = field(default_factory=lambda: new_id("du"))
    state: DataUnitState = DataUnitState.NEW
    created_at: float = field(default_factory=time.monotonic)
    #: Site names currently holding a full replica.
    replicas: set = field(default_factory=set)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("data unit name must be non-empty")
        blocks = tuple(np.asarray(b, dtype=np.float64) for b in self.blocks)
        for b in blocks:
            if b.ndim != 2:
                raise ValidationError(f"blocks must be 2-D, got shape {b.shape}")
            b.flags.writeable = False  # immutability by construction
        object.__setattr__(self, "blocks", blocks)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_rows(self) -> int:
        return sum(b.shape[0] for b in self.blocks)

    @property
    def size_bytes(self) -> int:
        return sum(b.nbytes for b in self.blocks)

    def concatenated(self) -> np.ndarray:
        """All blocks stacked into one array (they must share widths)."""
        if not self.blocks:
            raise ValidationError(f"data unit {self.name!r} is empty")
        widths = {b.shape[1] for b in self.blocks}
        if len(widths) != 1:
            raise ValidationError(f"blocks have mixed widths {sorted(widths)}")
        return np.vstack(self.blocks)

    def __repr__(self) -> str:
        return (
            f"DataUnit({self.name!r}, blocks={self.n_blocks}, "
            f"{self.size_bytes / 1e6:.2f} MB, replicas={sorted(self.replicas)})"
        )
