"""Pilot-Data: distributed data management along the continuum.

The pilot abstraction the paper builds on has a data-side counterpart —
Pilot-Data (Luckow et al., JPDC 2014) — that the Pilot-Edge architecture
relies on for "handling placement and data movements transparently".
This package implements it for the continuum:

- :class:`DataUnit` — a named, immutable collection of data blocks with
  size accounting and replica tracking,
- :class:`StorageSite` — per-site storage capacity (edge boxes are small,
  clouds are big),
- :class:`PilotDataService` — put/get, replication across sites (paying
  the topology's link costs), affinity queries ("closest replica to this
  compute site"), and eviction bookkeeping.

Compute/data affinity is what the placement policies consume: moving the
task to the data or the data to the task becomes an explicit, costed
choice.
"""

from repro.pilotdata.dataunit import DataUnit, DataUnitState
from repro.pilotdata.service import PilotDataService, StorageSite, StorageError

__all__ = [
    "DataUnit",
    "DataUnitState",
    "PilotDataService",
    "StorageSite",
    "StorageError",
]
