"""Token-bucket rate limiter.

Shared by flows crossing a common bottleneck link: tokens are bytes, the
refill rate is the link bandwidth, and a transfer larger than the current
fill level must wait. The bucket exposes both a *blocking* acquire (live
mode) and a *virtual-time* acquire used by the simulator.
"""

from __future__ import annotations

import threading
import time

from repro.util.validation import check_positive


class TokenBucket:
    """Byte-denominated token bucket.

    Parameters
    ----------
    rate_bytes_per_s:
        Steady-state refill rate.
    capacity_bytes:
        Burst size; defaults to one second of tokens.
    """

    def __init__(self, rate_bytes_per_s: float, capacity_bytes: float | None = None) -> None:
        check_positive("rate_bytes_per_s", rate_bytes_per_s)
        self.rate = float(rate_bytes_per_s)
        self.capacity = float(capacity_bytes) if capacity_bytes else self.rate
        check_positive("capacity_bytes", self.capacity)
        self._tokens = self.capacity
        self._last_refill = time.monotonic()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last_refill = now

    def try_acquire(self, nbytes: float) -> bool:
        """Non-blocking: take *nbytes* tokens if available."""
        with self._lock:
            self._refill(time.monotonic())
            if nbytes <= self._tokens:
                self._tokens -= nbytes
                return True
            return False

    def acquire(self, nbytes: float, timeout: float | None = None) -> bool:
        """Block until *nbytes* tokens are available (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                now = time.monotonic()
                self._refill(now)
                if nbytes <= self._tokens:
                    self._tokens -= nbytes
                    return True
                deficit = nbytes - self._tokens
                wait = deficit / self.rate
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                wait = min(wait, remaining)
            time.sleep(min(wait, 0.05))

    def delay_for(self, nbytes: float) -> float:
        """Virtual-time acquire: seconds a transfer must wait *now*.

        Consumes the tokens immediately (going negative models queued
        demand), returning the implied queueing delay — this is what the
        discrete-event simulator uses to serialise concurrent flows over
        one link.
        """
        with self._lock:
            self._refill(time.monotonic())
            self._tokens -= nbytes
            if self._tokens >= 0:
                return 0.0
            return -self._tokens / self.rate

    @property
    def available(self) -> float:
        with self._lock:
            self._refill(time.monotonic())
            return self._tokens
