"""Continuum topology: sites connected by emulated links.

A :class:`ContinuumTopology` names the tiers of a deployment (edge sites,
cloud regions, HPC centres) and the link profile between each pair. The
placement policies query it for transfer-cost estimates; the simulator
and the live pipeline use the concrete :class:`~repro.netem.link.Link`
objects it manages.

The paper's future-work section calls out generalising beyond two layers;
the topology here is already N-tier (sites form an arbitrary graph with
shortest-path routing), which we exercise in the hierarchical example.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.netem.link import LOOPBACK, Link, LinkProfile
from repro.util.validation import ValidationError, check_one_of

#: Recognised site tiers, ordered outermost-in.
TIERS = ("device", "edge", "cloud", "hpc")


@dataclass(frozen=True)
class Site:
    """A named location in the continuum."""

    name: str
    tier: str = "cloud"
    region: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("site name must be non-empty")
        check_one_of("tier", self.tier, TIERS)


class RouteError(ValueError):
    """No route exists between the requested sites."""


class ContinuumTopology:
    """Sites + links with shortest-path (lowest mean-RTT) routing."""

    def __init__(self, time_scale: float = 1.0, seed: int = 0) -> None:
        self._sites: dict[str, Site] = {}
        self._links: dict[tuple, Link] = {}
        self._time_scale = float(time_scale)
        self._seed = seed
        self._link_seq = 0
        self._loopback_link: Link | None = None

    # -- construction -------------------------------------------------------

    def add_site(self, name: str, tier: str = "cloud", region: str = "") -> Site:
        if name in self._sites:
            raise ValidationError(f"site {name!r} already exists")
        site = Site(name, tier, region)
        self._sites[name] = site
        return site

    def connect(self, a: str, b: str, profile: LinkProfile) -> Link:
        """Create a bidirectional link between sites *a* and *b*."""
        for site in (a, b):
            if site not in self._sites:
                raise ValidationError(f"unknown site {site!r}")
        if a == b:
            raise ValidationError("cannot connect a site to itself")
        key = (min(a, b), max(a, b))
        if key in self._links:
            raise ValidationError(f"sites {a!r} and {b!r} are already connected")
        self._link_seq += 1
        link = Link(profile, seed=self._seed + self._link_seq, time_scale=self._time_scale)
        self._links[key] = link
        return link

    # -- lookup --------------------------------------------------------------

    @property
    def sites(self) -> list[Site]:
        return sorted(self._sites.values(), key=lambda s: s.name)

    def site(self, name: str) -> Site:
        try:
            return self._sites[name]
        except KeyError:
            raise ValidationError(f"unknown site {name!r}") from None

    def sites_by_tier(self, tier: str) -> list[Site]:
        check_one_of("tier", tier, TIERS)
        return [s for s in self.sites if s.tier == tier]

    def direct_link(self, a: str, b: str) -> Link | None:
        if a == b:
            return None
        return self._links.get((min(a, b), max(a, b)))

    def link(self, a: str, b: str) -> Link:
        """The single link used between *a* and *b*.

        For co-located sites a loopback link is returned; for multi-hop
        routes the bottleneck (lowest-bandwidth) link on the shortest
        path is returned, which is the first-order cost of the path.
        """
        if a == b:
            return self._loopback()
        direct = self.direct_link(a, b)
        if direct is not None:
            return direct
        path = self.route(a, b)
        hops = [self.direct_link(u, v) for u, v in zip(path, path[1:])]
        return min(hops, key=lambda l: l.profile.mean_bandwidth_mbps)

    def _loopback(self) -> Link:
        if self._loopback_link is None:
            self._loopback_link = Link(LOOPBACK, seed=self._seed, time_scale=self._time_scale)
        return self._loopback_link

    def route(self, a: str, b: str) -> list[str]:
        """Dijkstra over mean RTT; returns the site sequence a..b."""
        self.site(a), self.site(b)
        if a == b:
            return [a]
        dist = {a: 0.0}
        prev: dict[str, str] = {}
        heap = [(0.0, a)]
        visited: set = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in visited:
                continue
            visited.add(u)
            if u == b:
                break
            for (x, y), link in self._links.items():
                if u not in (x, y):
                    continue
                v = y if u == x else x
                nd = d + link.profile.mean_rtt_ms
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        if b not in dist:
            raise RouteError(f"no route from {a!r} to {b!r}")
        path = [b]
        while path[-1] != a:
            path.append(prev[path[-1]])
        return list(reversed(path))

    def path_rtt_ms(self, a: str, b: str) -> float:
        """Mean end-to-end RTT along the routed path."""
        path = self.route(a, b)
        return sum(
            self.direct_link(u, v).profile.mean_rtt_ms for u, v in zip(path, path[1:])
        )

    def transfer_time_estimate(self, a: str, b: str, payload_bytes: int) -> float:
        """Mean-cost estimate used by placement policies (no sampling)."""
        if a == b:
            return 0.0
        path = self.route(a, b)
        total = 0.0
        for u, v in zip(path, path[1:]):
            p = self.direct_link(u, v).profile
            total += p.mean_rtt_ms / 2000.0
            total += payload_bytes * 8.0 / (p.mean_bandwidth_mbps * 1e6)
        return total

    def stats(self) -> dict:
        return {
            "sites": [s.name for s in self.sites],
            "links": {
                f"{a}<->{b}": link.stats() for (a, b), link in sorted(self._links.items())
            },
        }
