"""Network emulation for the edge-to-cloud continuum.

The paper's geographic-distribution experiment measures the transatlantic
link between XSEDE Jetstream (US) and the LRZ cloud (Germany) at
140–160 ms round-trip latency and 60–100 Mbit/s bandwidth (iPerf). This
package models continuum links with exactly those parameters:

- :class:`LinkProfile` / :class:`Link` — latency + bandwidth + jitter +
  loss models with a deterministic RNG, producing per-transfer times,
- :class:`TokenBucket` — shared-bandwidth enforcement when several flows
  cross one link,
- :class:`ContinuumTopology` — named sites connected by links, with
  route lookup used by the placement policies and the simulator.

Built-in profiles (``LOOPBACK``, ``LAN``, ``REGIONAL_WAN``,
``TRANSATLANTIC``, ``CELLULAR_EDGE``) cover the deployment scenarios the
paper discusses.
"""

from repro.netem.link import Link, LinkProfile, LOOPBACK, LAN, REGIONAL_WAN, TRANSATLANTIC, CELLULAR_EDGE
from repro.netem.tokenbucket import TokenBucket
from repro.netem.topology import ContinuumTopology, Site, RouteError

__all__ = [
    "Link",
    "LinkProfile",
    "LOOPBACK",
    "LAN",
    "REGIONAL_WAN",
    "TRANSATLANTIC",
    "CELLULAR_EDGE",
    "TokenBucket",
    "ContinuumTopology",
    "Site",
    "RouteError",
]
