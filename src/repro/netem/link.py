"""Point-to-point link model.

A link samples per-transfer conditions from configured ranges, exactly as
the paper characterises the LRZ–Jetstream path: "latency between both
locations varied between 140 and 160 msec; bandwidth fluctuated between
60 to 100 MBits/sec". Transfer time for a payload is::

    one_way_latency + payload_bits / sampled_bandwidth

Links can *apply* the delay in two ways:

- :meth:`transfer_time` returns the seconds a transfer takes (used by the
  discrete-event simulator and by the analysis code),
- :meth:`transfer` actually sleeps (scaled by ``time_scale``) for the
  live pipeline's emulated geo runs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.util.validation import (
    ValidationError,
    check_in_range,
    check_non_negative,
    check_positive,
)


@dataclass(frozen=True)
class LinkProfile:
    """Static description of a link's behaviour.

    Latencies are **round-trip** milliseconds (matching how the paper
    reports them); bandwidth is in Mbit/s. Ranges are sampled uniformly
    per transfer.
    """

    name: str
    rtt_ms_min: float
    rtt_ms_max: float
    bandwidth_mbps_min: float
    bandwidth_mbps_max: float
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("rtt_ms_min", self.rtt_ms_min)
        check_non_negative("rtt_ms_max", self.rtt_ms_max)
        check_positive("bandwidth_mbps_min", self.bandwidth_mbps_min)
        check_positive("bandwidth_mbps_max", self.bandwidth_mbps_max)
        check_in_range("loss_probability", self.loss_probability, 0.0, 1.0)
        if self.rtt_ms_min > self.rtt_ms_max:
            raise ValidationError("rtt_ms_min must be <= rtt_ms_max")
        if self.bandwidth_mbps_min > self.bandwidth_mbps_max:
            raise ValidationError("bandwidth_mbps_min must be <= bandwidth_mbps_max")

    @property
    def mean_rtt_ms(self) -> float:
        return (self.rtt_ms_min + self.rtt_ms_max) / 2.0

    @property
    def mean_bandwidth_mbps(self) -> float:
        return (self.bandwidth_mbps_min + self.bandwidth_mbps_max) / 2.0


#: In-process / co-located components — effectively free.
LOOPBACK = LinkProfile("loopback", 0.0, 0.0, 100_000.0, 100_000.0)
#: Same-datacenter LAN (the paper's baseline deployment on LRZ).
LAN = LinkProfile("lan", 0.2, 0.6, 9_000.0, 10_000.0)
#: Same-continent WAN between cloud regions.
REGIONAL_WAN = LinkProfile("regional-wan", 15.0, 30.0, 800.0, 1_000.0)
#: Jetstream (US) <-> LRZ (Germany), per the paper's iPerf measurements.
TRANSATLANTIC = LinkProfile("transatlantic", 140.0, 160.0, 60.0, 100.0)
#: Constrained last-mile edge uplink (LTE-class).
CELLULAR_EDGE = LinkProfile("cellular-edge", 40.0, 120.0, 10.0, 50.0, loss_probability=0.01)


class Link:
    """A stateful link instance: samples conditions, applies delays."""

    def __init__(
        self,
        profile: LinkProfile,
        seed: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        check_non_negative("time_scale", time_scale)
        self.profile = profile
        self._rng = np.random.default_rng(seed)
        #: Factor applied to real sleeps in :meth:`transfer`; 0 disables
        #: sleeping entirely (delays still *reported*). Lets integration
        #: tests run geo scenarios quickly while exercising the code path.
        self.time_scale = float(time_scale)
        self.transfers = 0
        self.bytes_moved = 0
        self.seconds_accumulated = 0.0
        self.losses = 0
        #: Optional :class:`~repro.faults.FaultInjector` consulted per
        #: transfer (chaos tests); scripted faults count as losses too.
        self.injector = None
        # rtt_delay() is called concurrently from pipelined request
        # threads; the numpy Generator and the stats counters need a
        # lock there (transfer()/transfer_time() stay single-caller).
        self._rtt_lock = threading.Lock()
        self.rtt_delays = 0

    def sample_rtt_s(self) -> float:
        p = self.profile
        return float(self._rng.uniform(p.rtt_ms_min, p.rtt_ms_max)) / 1000.0

    def sample_bandwidth_bps(self) -> float:
        p = self.profile
        return float(self._rng.uniform(p.bandwidth_mbps_min, p.bandwidth_mbps_max)) * 1e6

    def is_lost(self) -> bool:
        p = self.profile
        return p.loss_probability > 0 and self._rng.random() < p.loss_probability

    def transfer_time(self, payload_bytes: int) -> float:
        """Seconds one transfer of *payload_bytes* takes (one-way latency
        + serialization at the sampled bandwidth)."""
        check_non_negative("payload_bytes", payload_bytes)
        latency = self.sample_rtt_s() / 2.0
        serialization = (payload_bytes * 8.0) / self.sample_bandwidth_bps()
        duration = latency + serialization
        self.transfers += 1
        self.bytes_moved += int(payload_bytes)
        self.seconds_accumulated += duration
        return duration

    def transfer(self, payload_bytes: int) -> float:
        """Emulate a transfer in real time (sleep scaled by time_scale).

        Returns the *modelled* duration in seconds (unscaled). Raises
        :class:`ConnectionError` when the loss model drops the transfer.
        """
        if self.injector is not None:
            try:
                self.injector.on_transfer(self)
            except ConnectionError:
                self.losses += 1
                raise
        if self.is_lost():
            self.losses += 1
            raise ConnectionError(
                f"transfer dropped on link {self.profile.name!r}"
            )
        duration = self.transfer_time(payload_bytes)
        if self.time_scale > 0 and duration > 0:
            time.sleep(duration * self.time_scale)
        return duration

    def rtt_delay(self) -> float:
        """Emulate one request/response round trip (sleep in the caller).

        This is the wire-protocol counterpart of :meth:`transfer`: a
        :class:`~repro.broker.remote.RemoteBroker` with ``link`` set
        calls it once per request *in the requesting thread*, so
        pipelined concurrent requests overlap their RTTs the way real
        in-flight packets share a wire, while a serial client pays one
        full RTT per request. Returns the modelled (unscaled) RTT.
        """
        with self._rtt_lock:
            rtt = self.sample_rtt_s()
            self.rtt_delays += 1
            self.seconds_accumulated += rtt
        if self.time_scale > 0 and rtt > 0:
            time.sleep(rtt * self.time_scale)
        return rtt

    def stats(self) -> dict:
        return {
            "profile": self.profile.name,
            "transfers": self.transfers,
            "bytes_moved": self.bytes_moved,
            "seconds_accumulated": self.seconds_accumulated,
            "losses": self.losses,
            "rtt_delays": self.rtt_delays,
        }

    def __repr__(self) -> str:
        return f"Link({self.profile.name}, time_scale={self.time_scale})"
