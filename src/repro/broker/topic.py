"""Topic: a named set of partitions."""

from __future__ import annotations

from repro.broker.errors import UnknownPartitionError
from repro.broker.partition import PartitionLog
from repro.util.validation import ValidationError, check_positive


class Topic:
    """A named collection of :class:`PartitionLog` instances.

    The partition count is fixed at creation (as in Kafka, growing a topic
    is an administrative operation — provided here as
    :meth:`add_partitions` since the paper's dynamism scenarios scale the
    pipeline at runtime).
    """

    def __init__(
        self,
        name: str,
        num_partitions: int = 1,
        retention_bytes: int = 0,
        storage=None,
    ) -> None:
        if not name or "/" in name:
            raise ValidationError(f"invalid topic name {name!r}")
        check_positive("num_partitions", num_partitions)
        self.name = name
        self.retention_bytes = int(retention_bytes)
        #: Durable backend shared by every partition (a
        #: :class:`~repro.broker.storage.log.LogStorageManager`) or
        #: ``None`` for in-memory logs.
        self.storage = storage
        self._partitions = [
            PartitionLog(name, p, retention_bytes=retention_bytes, storage=storage)
            for p in range(int(num_partitions))
        ]

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    @property
    def partitions(self) -> tuple:
        return tuple(range(len(self._partitions)))

    def partition(self, index: int) -> PartitionLog:
        if not 0 <= index < len(self._partitions):
            raise UnknownPartitionError(self.name, index)
        return self._partitions[index]

    def add_partitions(self, count: int) -> None:
        """Grow the topic by *count* partitions (runtime scaling)."""
        check_positive("count", count)
        start = len(self._partitions)
        for p in range(start, start + int(count)):
            self._partitions.append(
                PartitionLog(
                    self.name,
                    p,
                    retention_bytes=self.retention_bytes,
                    storage=self.storage,
                )
            )

    @property
    def total_appended(self) -> int:
        return sum(p.total_appended for p in self._partitions)

    @property
    def total_bytes_in(self) -> int:
        return sum(p.total_bytes_in for p in self._partitions)

    @property
    def duplicates_dropped(self) -> int:
        return sum(p.duplicates_dropped for p in self._partitions)

    @property
    def long_polls_parked(self) -> int:
        return sum(p.long_polls_parked for p in self._partitions)

    @property
    def size_bytes(self) -> int:
        return sum(p.size_bytes for p in self._partitions)

    def __repr__(self) -> str:
        return f"Topic({self.name!r}, partitions={self.num_partitions})"
