"""Consumer-group coordination and partition assignment.

Mirrors Kafka's group-coordinator role: consumers join a group for a set
of topics, the coordinator assigns each partition to exactly one group
member, and any membership change (join/leave/crash) triggers an eager
rebalance that bumps the group *generation*. Consumers detect a stale
generation on their next poll and refresh their assignment.

Two assignment strategies are provided, matching Kafka's classic
assignors:

- :class:`RangeAssignor` — contiguous partition ranges per member
  (Kafka's default; keeps a device's partition stream on one consumer),
- :class:`RoundRobinAssignor` — partitions dealt one-by-one for the most
  even spread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.util.validation import ValidationError


class AssignmentStrategy:
    """Maps (members, partitions) to a per-member partition allocation."""

    name = "base"

    def assign(
        self, members: list[str], partitions: list[tuple]
    ) -> dict[str, list[tuple]]:
        """Return ``{member_id: [(topic, partition), ...]}``.

        *members* is sorted; *partitions* is a sorted list of
        ``(topic, partition)`` pairs. Every partition must appear exactly
        once in the result.
        """
        raise NotImplementedError


class RangeAssignor(AssignmentStrategy):
    """Contiguous ranges: member i gets the i-th slice of each topic."""

    name = "range"

    def assign(self, members, partitions):
        out = {m: [] for m in members}
        if not members:
            return out
        by_topic: dict[str, list[tuple]] = {}
        for tp in partitions:
            by_topic.setdefault(tp[0], []).append(tp)
        for topic in sorted(by_topic):
            tps = sorted(by_topic[topic])
            n, k = len(tps), len(members)
            base, extra = divmod(n, k)
            start = 0
            for i, member in enumerate(members):
                take = base + (1 if i < extra else 0)
                out[member].extend(tps[start : start + take])
                start += take
        return out


class RoundRobinAssignor(AssignmentStrategy):
    """Deal partitions across members one at a time."""

    name = "roundrobin"

    def assign(self, members, partitions):
        out = {m: [] for m in members}
        if not members:
            return out
        for i, tp in enumerate(sorted(partitions)):
            out[members[i % len(members)]].append(tp)
        return out


@dataclass
class _GroupState:
    group_id: str
    strategy: AssignmentStrategy
    generation: int = 0
    #: member_id -> subscribed topics
    members: dict = field(default_factory=dict)
    #: member_id -> [(topic, partition), ...]
    assignment: dict = field(default_factory=dict)


class GroupCoordinator:
    """Tracks consumer groups for one broker."""

    def __init__(self, broker) -> None:
        self._broker = broker
        self._groups: dict[str, _GroupState] = {}
        self._lock = threading.RLock()

    def join(
        self,
        group_id: str,
        member_id: str,
        topics: list[str],
        strategy: AssignmentStrategy | None = None,
    ) -> int:
        """Add *member_id* to the group; returns the new generation."""
        if not topics:
            raise ValidationError("a consumer must subscribe to at least one topic")
        with self._lock:
            state = self._groups.get(group_id)
            if state is None:
                state = _GroupState(
                    group_id=group_id,
                    strategy=strategy or RangeAssignor(),
                )
                self._groups[group_id] = state
            elif strategy is not None and type(strategy) is not type(state.strategy):
                raise ValidationError(
                    f"group {group_id!r} already uses strategy "
                    f"{state.strategy.name!r}"
                )
            state.members[member_id] = list(topics)
            self._rebalance(state)
            return state.generation

    def leave(self, group_id: str, member_id: str) -> None:
        with self._lock:
            state = self._groups.get(group_id)
            if state is None or member_id not in state.members:
                return
            del state.members[member_id]
            if state.members:
                self._rebalance(state)
            else:
                del self._groups[group_id]

    def _rebalance(self, state: _GroupState) -> None:
        all_topics = sorted({t for topics in state.members.values() for t in topics})
        partitions: list[tuple] = []
        for topic_name in all_topics:
            topic = self._broker.topic(topic_name)  # raises on unknown topic
            partitions.extend((topic_name, p) for p in topic.partitions)
        members = sorted(state.members)
        # Only members subscribed to a topic are eligible for its partitions.
        eligible: dict[str, list[str]] = {}
        for tp in partitions:
            eligible.setdefault(tp[0], [])
        raw = state.strategy.assign(members, partitions)
        # Strip partitions of topics a member did not subscribe to, and
        # reassign them among the subscribers.
        final = {m: [] for m in members}
        orphans: list[tuple] = []
        for member, tps in raw.items():
            for tp in tps:
                if tp[0] in state.members[member]:
                    final[member].append(tp)
                else:
                    orphans.append(tp)
        for i, tp in enumerate(sorted(orphans)):
            subscribers = sorted(m for m in members if tp[0] in state.members[m])
            if subscribers:
                final[subscribers[i % len(subscribers)]].append(tp)
        state.assignment = {m: sorted(tps) for m, tps in final.items()}
        state.generation += 1

    def assignment(self, group_id: str, member_id: str) -> tuple[int, list[tuple]]:
        """Return ``(generation, [(topic, partition), ...])`` for a member."""
        with self._lock:
            state = self._groups.get(group_id)
            if state is None or member_id not in state.members:
                return (0, [])
            return (state.generation, list(state.assignment.get(member_id, [])))

    def generation(self, group_id: str) -> int:
        with self._lock:
            state = self._groups.get(group_id)
            return state.generation if state else 0

    def members(self, group_id: str) -> list[str]:
        with self._lock:
            state = self._groups.get(group_id)
            return sorted(state.members) if state else []

    def describe(self, group_id: str) -> dict:
        """Full group snapshot for monitoring."""
        with self._lock:
            state = self._groups.get(group_id)
            if state is None:
                return {"group": group_id, "members": {}, "generation": 0}
            return {
                "group": group_id,
                "generation": state.generation,
                "strategy": state.strategy.name,
                "members": {m: list(tps) for m, tps in state.assignment.items()},
            }
