"""Consumer-group coordination and partition assignment.

Mirrors Kafka's group-coordinator role: consumers join a group for a set
of topics, the coordinator assigns each partition to exactly one group
member, and any membership change (join/leave/crash) triggers an eager
rebalance that bumps the group *generation*. Consumers detect a stale
generation on their next poll and refresh their assignment.

Two assignment strategies are provided, matching Kafka's classic
assignors:

- :class:`RangeAssignor` — contiguous partition ranges per member
  (Kafka's default; keeps a device's partition stream on one consumer),
- :class:`RoundRobinAssignor` — partitions dealt one-by-one for the most
  even spread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.broker.errors import UnknownMemberError
from repro.util.validation import ValidationError, check_non_negative


class AssignmentStrategy:
    """Maps (members, partitions) to a per-member partition allocation."""

    name = "base"

    def assign(
        self, members: list[str], partitions: list[tuple]
    ) -> dict[str, list[tuple]]:
        """Return ``{member_id: [(topic, partition), ...]}``.

        *members* is sorted; *partitions* is a sorted list of
        ``(topic, partition)`` pairs. Every partition must appear exactly
        once in the result.
        """
        raise NotImplementedError


class RangeAssignor(AssignmentStrategy):
    """Contiguous ranges: member i gets the i-th slice of each topic."""

    name = "range"

    def assign(self, members, partitions):
        out = {m: [] for m in members}
        if not members:
            return out
        by_topic: dict[str, list[tuple]] = {}
        for tp in partitions:
            by_topic.setdefault(tp[0], []).append(tp)
        for topic in sorted(by_topic):
            tps = sorted(by_topic[topic])
            n, k = len(tps), len(members)
            base, extra = divmod(n, k)
            start = 0
            for i, member in enumerate(members):
                take = base + (1 if i < extra else 0)
                out[member].extend(tps[start : start + take])
                start += take
        return out


class RoundRobinAssignor(AssignmentStrategy):
    """Deal partitions across members one at a time."""

    name = "roundrobin"

    def assign(self, members, partitions):
        out = {m: [] for m in members}
        if not members:
            return out
        for i, tp in enumerate(sorted(partitions)):
            out[members[i % len(members)]].append(tp)
        return out


@dataclass
class _GroupState:
    group_id: str
    strategy: AssignmentStrategy
    generation: int = 0
    #: member_id -> subscribed topics
    members: dict = field(default_factory=dict)
    #: member_id -> [(topic, partition), ...]
    assignment: dict = field(default_factory=dict)
    #: member_id -> monotonic time of last heartbeat/join.
    last_heartbeat: dict = field(default_factory=dict)
    #: Per-group failure-detection window (seconds); 0 disables eviction.
    session_timeout_s: float = 0.0


class GroupCoordinator:
    """Tracks consumer groups for one broker.

    Failure detection mirrors Kafka's session-timeout protocol: members
    refresh their lease via :meth:`heartbeat` (consumers piggyback it on
    ``poll``), and any member silent for longer than the group's
    ``session_timeout_ms`` is evicted by the sweeper — which runs lazily
    on every coordinator access, so no background thread is needed and
    tests stay deterministic. Eviction bumps the generation, triggering a
    rebalance that hands the dead member's partitions to the survivors.

    Generations are monotonic for the lifetime of the coordinator: when a
    group's last member leaves, the group state is dropped but its
    highest generation is persisted, and a re-created group resumes above
    it — a consumer can therefore always use ``generation`` comparisons
    to detect stale assignments, even across group destruction.
    """

    def __init__(self, broker, session_timeout_ms: float = 0.0, guard=None) -> None:
        check_non_negative("session_timeout_ms", session_timeout_ms)
        self._broker = broker
        #: Optional ``guard(group_id)`` hook invoked on every group-scoped
        #: entry point. Shard brokers install one that raises
        #: :class:`~repro.broker.errors.NotOwnerError` for groups whose
        #: coordinator hashes to a different shard, so group state can
        #: never split across processes.
        self._guard = guard
        self._groups: dict[str, _GroupState] = {}
        #: group_id -> highest generation ever reached (survives deletion).
        self._epochs: dict[str, int] = {}
        self._lock = threading.RLock()
        #: Default failure-detection window for new groups (0 = disabled).
        self.session_timeout_ms = float(session_timeout_ms)
        #: Members evicted by the session-timeout sweeper (monitoring).
        self.members_evicted = 0

    def join(
        self,
        group_id: str,
        member_id: str,
        topics: list[str],
        strategy: AssignmentStrategy | None = None,
        session_timeout_ms: float | None = None,
    ) -> int:
        """Add *member_id* to the group; returns the new generation."""
        self._check_guard(group_id)
        if not topics:
            raise ValidationError("a consumer must subscribe to at least one topic")
        if session_timeout_ms is not None:
            check_non_negative("session_timeout_ms", session_timeout_ms)
        with self._lock:
            state = self._groups.get(group_id)
            if state is None:
                state = _GroupState(
                    group_id=group_id,
                    strategy=strategy or RangeAssignor(),
                    generation=self._epochs.get(group_id, 0),
                    session_timeout_s=self.session_timeout_ms / 1000.0,
                )
                self._groups[group_id] = state
            elif strategy is not None and type(strategy) is not type(state.strategy):
                raise ValidationError(
                    f"group {group_id!r} already uses strategy "
                    f"{state.strategy.name!r}"
                )
            if session_timeout_ms is not None:
                state.session_timeout_s = session_timeout_ms / 1000.0
            state.members[member_id] = list(topics)
            state.last_heartbeat[member_id] = time.monotonic()
            self._rebalance(state)
            return state.generation

    def _check_guard(self, group_id: str) -> None:
        if self._guard is not None:
            self._guard(group_id)

    def leave(self, group_id: str, member_id: str) -> None:
        self._check_guard(group_id)
        with self._lock:
            state = self._groups.get(group_id)
            if state is None or member_id not in state.members:
                return
            del state.members[member_id]
            state.last_heartbeat.pop(member_id, None)
            if state.members:
                self._rebalance(state)
            else:
                # Persist the epoch so a re-created group's generations
                # stay monotonic (stale-assignment checks remain sound).
                self._epochs[group_id] = state.generation
                del self._groups[group_id]

    # -- failure detection ----------------------------------------------------

    def heartbeat(self, group_id: str, member_id: str) -> int:
        """Refresh *member_id*'s session lease; returns the generation.

        Raises :class:`UnknownMemberError` when the member was evicted
        (or never joined) — the consumer must re-join and re-fetch its
        assignment.
        """
        self._check_guard(group_id)
        with self._lock:
            self._sweep_locked(group_id)
            state = self._groups.get(group_id)
            if state is None or member_id not in state.members:
                raise UnknownMemberError(group_id, member_id)
            state.last_heartbeat[member_id] = time.monotonic()
            return state.generation

    def sweep(self, group_id: str | None = None) -> list[str]:
        """Evict members whose session lease expired; returns their ids.

        Called lazily from every coordinator entry point; exposed for
        tests and monitoring loops that want an explicit sweep.
        """
        with self._lock:
            groups = [group_id] if group_id is not None else list(self._groups)
            evicted: list[str] = []
            for gid in groups:
                evicted.extend(self._sweep_locked(gid))
            return evicted

    def _sweep_locked(self, group_id: str) -> list[str]:
        state = self._groups.get(group_id)
        if state is None or state.session_timeout_s <= 0:
            return []
        cutoff = time.monotonic() - state.session_timeout_s
        expired = [
            m for m, last in state.last_heartbeat.items() if last < cutoff
        ]
        for member in expired:
            state.members.pop(member, None)
            state.last_heartbeat.pop(member, None)
        if expired:
            self.members_evicted += len(expired)
            if state.members:
                self._rebalance(state)
            else:
                # Bump past the dead generation so rejoining members see
                # a change even though nobody is left to rebalance.
                state.generation += 1
                self._epochs[group_id] = state.generation
                del self._groups[group_id]
        return expired

    def _rebalance(self, state: _GroupState) -> None:
        all_topics = sorted({t for topics in state.members.values() for t in topics})
        partitions: list[tuple] = []
        for topic_name in all_topics:
            topic = self._broker.topic(topic_name)  # raises on unknown topic
            partitions.extend((topic_name, p) for p in topic.partitions)
        members = sorted(state.members)
        # Only members subscribed to a topic are eligible for its partitions.
        eligible: dict[str, list[str]] = {}
        for tp in partitions:
            eligible.setdefault(tp[0], [])
        raw = state.strategy.assign(members, partitions)
        # Strip partitions of topics a member did not subscribe to, and
        # reassign them among the subscribers.
        final = {m: [] for m in members}
        orphans: list[tuple] = []
        for member, tps in raw.items():
            for tp in tps:
                if tp[0] in state.members[member]:
                    final[member].append(tp)
                else:
                    orphans.append(tp)
        for i, tp in enumerate(sorted(orphans)):
            subscribers = sorted(m for m in members if tp[0] in state.members[m])
            if subscribers:
                final[subscribers[i % len(subscribers)]].append(tp)
        state.assignment = {m: sorted(tps) for m, tps in final.items()}
        state.generation += 1

    def assignment(self, group_id: str, member_id: str) -> tuple[int, list[tuple]]:
        """Return ``(generation, [(topic, partition), ...])`` for a member."""
        self._check_guard(group_id)
        with self._lock:
            self._sweep_locked(group_id)
            state = self._groups.get(group_id)
            if state is None or member_id not in state.members:
                return (0, [])
            return (state.generation, list(state.assignment.get(member_id, [])))

    def generation(self, group_id: str) -> int:
        self._check_guard(group_id)
        with self._lock:
            self._sweep_locked(group_id)
            state = self._groups.get(group_id)
            return state.generation if state else 0

    def members(self, group_id: str) -> list[str]:
        self._check_guard(group_id)
        with self._lock:
            self._sweep_locked(group_id)
            state = self._groups.get(group_id)
            return sorted(state.members) if state else []

    def group_ids(self) -> list[str]:
        """Ids of all live groups (the telemetry sampler iterates these)."""
        with self._lock:
            for gid in list(self._groups):
                self._sweep_locked(gid)
            return sorted(self._groups)

    def group_topics(self, group_id: str) -> list[str]:
        """Union of the topics the group's members subscribe to."""
        self._check_guard(group_id)
        with self._lock:
            self._sweep_locked(group_id)
            state = self._groups.get(group_id)
            if state is None:
                return []
            return sorted({t for topics in state.members.values() for t in topics})

    def committed_offsets(self, group_id: str) -> dict:
        """``{(topic, partition): committed_offset}`` for one group.

        Offsets live on the broker's offset store; this accessor scopes
        them to a group so the telemetry sampler (and lag computations)
        need not know the store's key layout.
        """
        self._check_guard(group_id)
        return self._broker.committed_offsets(group_id)

    def describe(self, group_id: str) -> dict:
        """Full group snapshot for monitoring."""
        self._check_guard(group_id)
        with self._lock:
            self._sweep_locked(group_id)
            state = self._groups.get(group_id)
            if state is None:
                return {"group": group_id, "members": {}, "generation": 0}
            return {
                "group": group_id,
                "generation": state.generation,
                "strategy": state.strategy.name,
                "session_timeout_ms": state.session_timeout_s * 1000.0,
                "members": {m: list(tps) for m, tps in state.assignment.items()},
            }
