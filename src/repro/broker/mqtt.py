"""MQTT-style lightweight broker plugin.

Demonstrates the paper's plugin mechanism for "low-performance and
low-power environments": topic-based publish/subscribe with bounded
per-subscriber queues and QoS-0 semantics (fire-and-forget; messages
published while a subscriber's queue is full are dropped and counted).
No partitions, no offsets, no replay — exactly the trade-off an MQTT
deployment makes versus Kafka.
"""

from __future__ import annotations

import queue
import threading
from typing import Any

from repro.util.ids import new_id
from repro.util.validation import ValidationError, check_positive


class MqttSubscription:
    """Handle owned by one subscriber on one topic filter."""

    def __init__(self, topic: str, maxsize: int) -> None:
        self.topic = topic
        self.subscription_id = new_id("sub")
        self._queue: queue.Queue = queue.Queue(maxsize=maxsize)
        self.dropped = 0

    def deliver(self, payload: Any) -> bool:
        try:
            self._queue.put_nowait(payload)
            return True
        except queue.Full:
            self.dropped += 1
            return False

    def get(self, timeout: float = 0.0):
        """Next message, or ``None`` on timeout."""
        try:
            if timeout > 0:
                return self._queue.get(timeout=timeout)
            return self._queue.get_nowait()
        except queue.Empty:
            return None

    def pending(self) -> int:
        return self._queue.qsize()


class MqttStyleBroker:
    """Topic pub/sub with QoS-0 delivery and ``+``/``#`` wildcards."""

    def __init__(self, name: str | None = None, queue_size: int = 256) -> None:
        check_positive("queue_size", queue_size)
        self.name = name or new_id("mqtt")
        self._queue_size = int(queue_size)
        self._subs: dict[str, list[MqttSubscription]] = {}
        self._lock = threading.Lock()
        self.messages_published = 0
        self.messages_dropped = 0

    # MQTT topic filters: levels split on '/', '+' matches one level,
    # '#' matches the remainder.
    @staticmethod
    def _matches(filter_: str, topic: str) -> bool:
        f_parts = filter_.split("/")
        t_parts = topic.split("/")
        for i, fp in enumerate(f_parts):
            if fp == "#":
                return True
            if i >= len(t_parts):
                return False
            if fp != "+" and fp != t_parts[i]:
                return False
        return len(f_parts) == len(t_parts)

    def subscribe(self, topic_filter: str) -> MqttSubscription:
        if not topic_filter:
            raise ValidationError("empty topic filter")
        sub = MqttSubscription(topic_filter, self._queue_size)
        with self._lock:
            self._subs.setdefault(topic_filter, []).append(sub)
        return sub

    def unsubscribe(self, sub: MqttSubscription) -> None:
        with self._lock:
            subs = self._subs.get(sub.topic, [])
            if sub in subs:
                subs.remove(sub)
            if not subs and sub.topic in self._subs:
                del self._subs[sub.topic]

    def publish(self, topic: str, payload: Any) -> int:
        """Deliver to all matching subscriptions; returns delivery count."""
        if not topic or "+" in topic or "#" in topic:
            raise ValidationError(f"invalid publish topic {topic!r}")
        delivered = 0
        with self._lock:
            targets = [
                s
                for filt, subs in self._subs.items()
                if self._matches(filt, topic)
                for s in subs
            ]
        for sub in targets:
            if sub.deliver(payload):
                delivered += 1
            else:
                self.messages_dropped += 1
        self.messages_published += 1
        return delivered

    def stats(self) -> dict:
        with self._lock:
            n_subs = sum(len(s) for s in self._subs.values())
        return {
            "broker": self.name,
            "subscriptions": n_subs,
            "messages_published": self.messages_published,
            "messages_dropped": self.messages_dropped,
        }
