"""Cluster metadata: who owns which partition, and which epoch says so.

Ownership is a *rule*, not a table: a ``(topic, partition)`` pair hashes
deterministically onto one of ``num_shards`` slots, and the metadata
only has to carry the shard address list plus an epoch. That keeps the
``describe_cluster`` payload O(shards) instead of O(partitions), and —
more importantly — means dynamically created topics need no metadata
push: every client and every shard derives the same owner from the same
rule the moment the topic exists.

The epoch increments whenever the supervisor changes the address list
(today: respawning a dead shard). Clients treat a response carrying a
newer epoch as authoritative and refuse to go backwards, mirroring the
producer-epoch fencing the broker already does for idempotent writes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass


def shard_for_partition(topic: str, partition: int, num_shards: int) -> int:
    """Deterministic owner slot for one ``(topic, partition)`` pair.

    Adding the partition index *after* hashing the topic spreads a
    topic's partitions across consecutive shards, so a single hot topic
    with >= num_shards partitions uses every core.
    """
    if num_shards <= 1:
        return 0
    return (zlib.crc32(topic.encode("utf-8")) + partition) % num_shards


def coordinator_shard(group_id: str, num_shards: int) -> int:
    """Deterministic coordinator slot for a consumer group (or producer id).

    All group-scoped state (members, generations, committed offsets)
    lives on this one shard, so heartbeats and commits for a group never
    race across processes.
    """
    if num_shards <= 1:
        return 0
    return zlib.crc32(group_id.encode("utf-8")) % num_shards


@dataclass(frozen=True)
class ClusterMetadata:
    """An epoch-stamped shard address list with ownership accessors."""

    epoch: int
    shards: tuple[tuple[str, int], ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def owner_index(self, topic: str, partition: int) -> int:
        return shard_for_partition(topic, partition, len(self.shards))

    def owner(self, topic: str, partition: int) -> tuple[str, int]:
        return self.shards[self.owner_index(topic, partition)]

    def coordinator_index(self, group_id: str) -> int:
        return coordinator_shard(group_id, len(self.shards))

    def coordinator(self, group_id: str) -> tuple[str, int]:
        return self.shards[self.coordinator_index(group_id)]

    def to_wire(self) -> dict:
        return {
            "epoch": self.epoch,
            "shards": [[host, port] for host, port in self.shards],
        }

    @classmethod
    def from_wire(cls, obj: dict) -> "ClusterMetadata":
        return cls(
            epoch=int(obj["epoch"]),
            shards=tuple((str(h), int(p)) for h, p in obj["shards"]),
        )
