"""Cluster metadata: who owns which partition, and which epoch says so.

Ownership is a *rule*, not a table: a ``(topic, partition)`` pair hashes
deterministically onto one of ``num_shards`` slots, and the metadata
only has to carry the shard address list plus an epoch. That keeps the
``describe_cluster`` payload O(shards) instead of O(partitions), and —
more importantly — means dynamically created topics need no metadata
push: every client and every shard derives the same owner from the same
rule the moment the topic exists.

Replication layers on the same rule: a partition's *replica set* is the
``replication_factor`` consecutive slots starting at its hash slot, and
its **leader** defaults to the hash slot itself. The only table the
metadata ever carries is the exception list — ``leaders`` holds one
``(topic, partition, shard, partition_epoch)`` override per partition
whose leadership moved off its hash slot (a failover election), so the
payload stays O(shards + elections), not O(partitions).

The epoch increments whenever the supervisor changes the address list or
the leader overrides (respawning a dead shard, electing a new leader).
Clients treat a response carrying a newer epoch as authoritative and
refuse to go backwards, mirroring the producer-epoch fencing the broker
already does for idempotent writes; the per-partition ``partition_epoch``
additionally fences a deposed leader's replication traffic
(:class:`~repro.broker.errors.StaleLeaderEpochError`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass


def shard_for_partition(topic: str, partition: int, num_shards: int) -> int:
    """Deterministic owner slot for one ``(topic, partition)`` pair.

    Adding the partition index *after* hashing the topic spreads a
    topic's partitions across consecutive shards, so a single hot topic
    with >= num_shards partitions uses every core.
    """
    if num_shards <= 1:
        return 0
    return (zlib.crc32(topic.encode("utf-8")) + partition) % num_shards


def replica_indices(
    topic: str, partition: int, num_shards: int, replication_factor: int
) -> tuple[int, ...]:
    """The shard slots holding copies of one partition, preferred first.

    The hash slot leads the list (it is the default leader); the
    remaining ``replication_factor - 1`` followers are the consecutive
    slots after it, wrapped — the same consecutive-slot rule Kafka's
    default assignor uses, so a topic's replica load spreads evenly.
    Capped at ``num_shards`` distinct slots.
    """
    if num_shards <= 1:
        return (0,)
    first = shard_for_partition(topic, partition, num_shards)
    count = max(1, min(int(replication_factor), num_shards))
    return tuple((first + k) % num_shards for k in range(count))


def coordinator_shard(group_id: str, num_shards: int) -> int:
    """Deterministic coordinator slot for a consumer group (or producer id).

    All group-scoped state (members, generations, committed offsets)
    lives on this one shard, so heartbeats and commits for a group never
    race across processes.
    """
    if num_shards <= 1:
        return 0
    return zlib.crc32(group_id.encode("utf-8")) % num_shards


@dataclass(frozen=True)
class ClusterMetadata:
    """An epoch-stamped shard address list with ownership accessors.

    ``leaders`` is the failover override table: tuples of
    ``(topic, partition, shard, partition_epoch)`` for partitions whose
    leader is no longer their hash slot. Empty in a healthy cluster.
    """

    epoch: int
    shards: tuple[tuple[str, int], ...]
    replication_factor: int = 1
    leaders: tuple[tuple[str, int, int, int], ...] = ()

    def __post_init__(self) -> None:
        # Frozen dataclass: the derived lookup table rides alongside the
        # fields (it is not itself a field, so equality stays field-wise).
        object.__setattr__(
            self,
            "_leader_map",
            {(t, p): (s, e) for t, p, s, e in self.leaders},
        )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def leader_index(self, topic: str, partition: int) -> int:
        """The shard currently leading (serving) one partition."""
        entry = self._leader_map.get((topic, partition))
        if entry is not None:
            return entry[0]
        return shard_for_partition(topic, partition, len(self.shards))

    def partition_epoch(self, topic: str, partition: int) -> int:
        """Leader-election generation for one partition (0 = never moved)."""
        entry = self._leader_map.get((topic, partition))
        return entry[1] if entry is not None else 0

    def replica_indices(self, topic: str, partition: int) -> tuple[int, ...]:
        return replica_indices(
            topic, partition, len(self.shards), self.replication_factor
        )

    def owner_index(self, topic: str, partition: int) -> int:
        # Routing targets the *leader*: with no overrides this is the
        # plain hash slot, so pre-replication behavior is unchanged.
        return self.leader_index(topic, partition)

    def owner(self, topic: str, partition: int) -> tuple[str, int]:
        return self.shards[self.owner_index(topic, partition)]

    def coordinator_index(self, group_id: str) -> int:
        return coordinator_shard(group_id, len(self.shards))

    def coordinator(self, group_id: str) -> tuple[str, int]:
        return self.shards[self.coordinator_index(group_id)]

    def to_wire(self) -> dict:
        out = {
            "epoch": self.epoch,
            "shards": [[host, port] for host, port in self.shards],
        }
        # Only stamp the replication fields when they carry information,
        # so unreplicated clusters keep the exact pre-replication schema.
        if self.replication_factor != 1:
            out["replication_factor"] = self.replication_factor
        if self.leaders:
            out["leaders"] = [list(entry) for entry in self.leaders]
        return out

    @classmethod
    def from_wire(cls, obj: dict) -> "ClusterMetadata":
        return cls(
            epoch=int(obj["epoch"]),
            shards=tuple((str(h), int(p)) for h, p in obj["shards"]),
            replication_factor=int(obj.get("replication_factor", 1)),
            leaders=tuple(
                (str(t), int(p), int(s), int(e))
                for t, p, s, e in obj.get("leaders", ())
            ),
        )
