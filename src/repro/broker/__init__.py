"""In-memory message brokering substrate (Kafka-equivalent).

Pilot-Edge moves data between continuum layers through a pilot-managed
broker. The paper uses Apache Kafka with one partition per edge device;
this package provides a from-scratch broker with the same semantics the
paper's evaluation depends on:

- topics split into append-only, offset-addressed partitions,
- producers with pluggable partitioners (key-hash / round-robin / sticky),
- consumers organised in consumer groups with cooperative rebalancing and
  committed offsets,
- broker-side metrics (bytes/records in and out per topic) so broker
  throughput can be observed independently from consumer throughput —
  the Fig. 2 observation that "the broker can process more data than the
  consuming processing tasks".

A lightweight MQTT-style plugin (:class:`MqttStyleBroker`) demonstrates
the paper's broker plugin mechanism for low-power environments.
"""

from repro.broker.errors import (
    BrokerError,
    BrokerTimeoutError,
    DisconnectedError,
    FatalError,
    NotEnoughReplicasError,
    NotOwnerError,
    OffsetOutOfRangeError,
    OutOfOrderSequenceError,
    ProducerFencedError,
    RebalanceInProgressError,
    RetriableError,
    StaleLeaderEpochError,
    UnknownMemberError,
    UnknownPartitionError,
    UnknownTopicError,
    is_retriable,
)
from repro.broker.message import BatchMetadata, Record, RecordMetadata
from repro.broker.partition import PartitionLog
from repro.broker.topic import Topic
from repro.broker.broker import Broker
from repro.broker.producer import BatchAccumulator, Producer, Partitioner, KeyHashPartitioner, RoundRobinPartitioner, StickyPartitioner
from repro.broker.consumer import Consumer
from repro.broker.group import GroupCoordinator, AssignmentStrategy, RangeAssignor, RoundRobinAssignor
from repro.broker.serde import Serde, BytesSerde, JsonSerde, BlockSerde, PickleSerde
from repro.broker.plugins import broker_plugin, create_broker, available_plugins
from repro.broker.mqtt import MqttStyleBroker
from repro.broker.remote import (
    BrokerServer,
    RemoteBroker,
    RemoteBrokerError,
    RemoteFatalError,
    RemoteRetriableError,
    ThreadedBrokerServer,
)
from repro.broker.metadata import (
    ClusterMetadata,
    coordinator_shard,
    replica_indices,
    shard_for_partition,
)
from repro.broker.cluster import (
    ClusterBroker,
    ClusterBrokerSupervisor,
    ShardBroker,
    connect_bootstrap,
)
from repro.broker.storage import (
    GroupCommitFlusher,
    LogStorageManager,
    PilotDataOffloader,
    SegmentStore,
    StorageConfig,
    StorageError,
    TornWriteError,
)

__all__ = [
    "ClusterBroker",
    "ClusterBrokerSupervisor",
    "ClusterMetadata",
    "NotEnoughReplicasError",
    "NotOwnerError",
    "ShardBroker",
    "StaleLeaderEpochError",
    "connect_bootstrap",
    "coordinator_shard",
    "replica_indices",
    "shard_for_partition",
    "BrokerServer",
    "ThreadedBrokerServer",
    "RemoteBroker",
    "RemoteBrokerError",
    "RemoteRetriableError",
    "RemoteFatalError",
    "BrokerError",
    "RetriableError",
    "FatalError",
    "BrokerTimeoutError",
    "DisconnectedError",
    "ProducerFencedError",
    "OutOfOrderSequenceError",
    "UnknownMemberError",
    "is_retriable",
    "UnknownTopicError",
    "UnknownPartitionError",
    "OffsetOutOfRangeError",
    "RebalanceInProgressError",
    "Record",
    "RecordMetadata",
    "BatchMetadata",
    "BatchAccumulator",
    "PartitionLog",
    "Topic",
    "Broker",
    "Producer",
    "Partitioner",
    "KeyHashPartitioner",
    "RoundRobinPartitioner",
    "StickyPartitioner",
    "Consumer",
    "GroupCoordinator",
    "AssignmentStrategy",
    "RangeAssignor",
    "RoundRobinAssignor",
    "Serde",
    "BytesSerde",
    "JsonSerde",
    "BlockSerde",
    "PickleSerde",
    "broker_plugin",
    "create_broker",
    "available_plugins",
    "MqttStyleBroker",
    "GroupCommitFlusher",
    "LogStorageManager",
    "PilotDataOffloader",
    "SegmentStore",
    "StorageConfig",
    "StorageError",
    "TornWriteError",
]
