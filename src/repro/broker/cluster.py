"""Multi-core broker: sharded partition ownership across processes.

Python's GIL means one broker process time-slices one core no matter how
deep the fast path gets. This module escapes it the way Kafka scales a
cluster — by *ownership*, not by locking: partitions are hashed across N
worker **processes** (each running its own
:class:`~repro.broker.reactor.ReactorBrokerServer` event loop on its own
port), every ``(topic, partition)`` pair has exactly one owner, and
clients route per partition. Three pieces:

- :class:`ShardBroker` — a :class:`~repro.broker.broker.Broker` that
  knows which slice of the partition space it owns and answers
  :class:`~repro.broker.errors.NotOwnerError` for the rest *before*
  touching any state, so a rejected op is always safe to retry against
  the true owner. Group coordination is ownership-guarded the same way:
  each group id hashes to one *coordinator shard* that holds the group's
  members, generations, and committed offsets.
- :class:`ClusterBrokerSupervisor` — spawns the worker processes, hands
  each the cluster address map + epoch over a control pipe, respawns
  dead shards on their original port (bumping the epoch), and tears the
  whole thing down deterministically.
- :class:`ClusterBroker` — the cluster-aware client: bootstraps metadata
  from any shard (``describe_cluster``), keeps one pipelined
  :class:`~repro.broker.remote.RemoteBroker` per shard, routes every
  partition-affine op to its owner and every group-affine op to its
  coordinator, and on ``NotOwnerError`` or connection loss refreshes
  metadata with capped backoff — replaying only idempotent ops, exactly
  the rules the single-connection client already follows.

Ownership is a *rule* (:mod:`repro.broker.metadata`), so the metadata
payload is O(shards) and newly created topics need no epoch bump. With
``num_shards=1`` everything degenerates to today's single-process
behavior, which is also how old single-broker clients stay compatible:
a plain :class:`RemoteBroker` pointed at one shard works unchanged.

This is ROADMAP item 1's skeleton: a partition→process map is a
partition→broker map in miniature, and ``NotOwnerError`` is
``NotLeaderError`` without replication.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from multiprocessing.connection import wait as connection_wait

from repro.broker.broker import Broker
from repro.broker.errors import (
    BrokerError,
    BrokerTimeoutError,
    DisconnectedError,
    NotEnoughReplicasError,
    NotOwnerError,
    ProducerFencedError,
    StaleLeaderEpochError,
)
from repro.broker.group import GroupCoordinator
from repro.broker.metadata import (
    ClusterMetadata,
    coordinator_shard,
    replica_indices,
    shard_for_partition,
)
from repro.broker.reactor import ReactorBrokerServer
from repro.broker.remote import (
    RemoteBroker,
    RemoteBrokerError,
    RemoteRetriableError,
)
from repro.monitoring.events import EventJournal
from repro.monitoring.instruments import MetricsRegistry
from repro.monitoring.tracing import TRACE_HEADER, Tracer
from repro.util.validation import ValidationError


# -- the shard-side broker ---------------------------------------------------


class ShardBroker(Broker):
    """A broker that owns a deterministic slice of the partition space.

    Partition-affine ops (``append``/``append_many``/``fetch``/offsets/
    ``partition_log`` — the last one covers the reactor's long-poll
    parking path) check ownership *first* and raise
    :class:`NotOwnerError` before any state is read or written; group-
    affine ops (coordination, commits) check the group's coordinator
    shard the same way via the coordinator's guard hook. Topics are
    created on every shard with their full partition set — unowned
    partition logs simply stay empty — so rebalance computations and
    partition counts need no cross-shard calls.

    Idempotent-producer ids are strided (``shard + k * num_shards``) so
    producers registered on different shards can never collide; with one
    shard this reduces to the plain broker's dense numbering.
    """

    def __init__(
        self,
        shard_index: int = 0,
        num_shards: int = 1,
        name: str | None = None,
        auto_create_topics: bool = False,
        tracer=None,
        replication_factor: int = 1,
        log_dir: str | None = None,
        storage=None,
        telemetry: bool = False,
        trace_sample: float = 1.0,
    ) -> None:
        if not 0 <= shard_index < num_shards:
            raise ValidationError(
                f"shard_index {shard_index} out of range for {num_shards} shards"
            )
        if replication_factor < 1:
            raise ValidationError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        super().__init__(
            name=name or f"shard-{shard_index}",
            auto_create_topics=auto_create_topics,
            tracer=tracer,
            log_dir=log_dir,
            storage=storage,
        )
        self.shard_index = int(shard_index)
        self.num_shards = int(num_shards)
        self.replication_factor = int(replication_factor)
        #: Whether the per-record instrumentation plane (registry +
        #: tracer) is active. The control-plane journal below is NOT
        #: gated on this: its emissions are per-election / per-boot /
        #: per-stall, never per record, so it is always on — the events
        #: are what an operator needs *after* an incident, when it is
        #: too late to turn telemetry on.
        self.telemetry = bool(telemetry)
        self.events = EventJournal(origin=self.name)
        self.registry = MetricsRegistry() if self.telemetry else None
        if self.telemetry and self.tracer is None:
            self.tracer = Tracer(
                service=self.name, sample_rate=float(trace_sample)
            )
        if self._storage is not None:
            # Stores open lazily at create_topic time, so every store —
            # including ones whose boot recovery runs then — inherits
            # the journal/registry hooks installed here.
            self._storage.journal = self.events
            self._storage.registry = self.registry
        #: How long an ``acks="all"`` append may wait for the high-
        #: watermark before :class:`NotEnoughReplicasError` (retriable).
        self.acks_timeout_s = 5.0
        #: Optional :class:`~repro.faults.FaultInjector` whose
        #: ``on_replication`` hook the replicator consults per push.
        self.fault_injector = None
        self._cluster_meta = ClusterMetadata(epoch=0, shards=())
        self._server = None
        self._replicator: _ShardReplicator | None = None
        # Replace the base coordinator with one whose every group-scoped
        # entry point re-checks coordinator ownership.
        self._coordinator = GroupCoordinator(self, guard=self._check_group_owner)

    # -- cluster wiring ------------------------------------------------------

    def set_cluster(self, addresses, epoch: int, leaders=()) -> None:
        """Install the shard address map (called by the supervisor).

        *leaders* is the failover override table —
        ``(topic, partition, shard, partition_epoch)`` tuples for
        partitions whose leadership moved off the hash slot.
        """
        meta = ClusterMetadata(
            epoch=int(epoch),
            shards=tuple((str(h), int(p)) for h, p in addresses),
            replication_factor=self.replication_factor,
            leaders=tuple(
                (str(t), int(p), int(s), int(e)) for t, p, s, e in leaders
            ),
        )
        if meta.num_shards != self.num_shards:
            raise ValidationError(
                f"cluster map has {meta.num_shards} shards, broker expects "
                f"{self.num_shards}"
            )
        self._cluster_meta = meta
        rep = self._replicator
        if rep is not None:
            rep.wake()

    def attach_server(self, server) -> None:
        """Both broker servers call this on start(); keeps a handle so
        the reactor's gauges can be served over the wire."""
        self._server = server

    @property
    def cluster_epoch(self) -> int:
        return self._cluster_meta.epoch

    # -- ownership guards ----------------------------------------------------

    def _leader_index(self, topic: str, partition: int) -> int:
        """The shard currently leading one partition.

        Uses the installed metadata's override table when it matches this
        cluster's shape (so failover elections take effect the moment the
        supervisor broadcasts them); falls back to the hash rule before
        ``set_cluster`` has run.
        """
        meta = self._cluster_meta
        if meta.num_shards == self.num_shards:
            return meta.leader_index(topic, partition)
        return shard_for_partition(topic, partition, self.num_shards)

    def _replica_indices(self, topic: str, partition: int) -> tuple[int, ...]:
        meta = self._cluster_meta
        if meta.num_shards == self.num_shards:
            return meta.replica_indices(topic, partition)
        return replica_indices(
            topic, partition, self.num_shards, self.replication_factor
        )

    def owns(self, topic: str, partition: int) -> bool:
        return self._leader_index(topic, partition) == self.shard_index

    def _check_owner(self, topic: str, partition: int) -> None:
        owner = self._leader_index(topic, partition)
        if owner != self.shard_index:
            raise NotOwnerError(
                f"partition {topic}/{partition}",
                owner,
                self.shard_index,
                self._cluster_meta.epoch,
            )

    def _check_replica(self, topic: str, partition: int) -> None:
        indices = self._replica_indices(topic, partition)
        if self.shard_index not in indices:
            raise NotOwnerError(
                f"replica {topic}/{partition}",
                indices[0],
                self.shard_index,
                self._cluster_meta.epoch,
            )

    def _check_group_owner(self, group: str) -> None:
        owner = coordinator_shard(group, self.num_shards)
        if owner != self.shard_index:
            raise NotOwnerError(
                f"group {group!r}", owner, self.shard_index, self._cluster_meta.epoch
            )

    # -- partition-affine surface --------------------------------------------

    def append(self, topic, partition, value, **kwargs):
        self._check_owner(topic, partition)
        acks = kwargs.pop("acks", None)
        try:
            md = super().append(topic, partition, value, **kwargs)
        except ProducerFencedError as exc:
            self._journal_fenced(topic, partition, exc)
            raise
        self._after_append(topic, partition, md.offset + 1, acks)
        return md

    def append_many(self, topic, partition, values, **kwargs):
        self._check_owner(topic, partition)
        acks = kwargs.pop("acks", None)
        try:
            md = super().append_many(topic, partition, values, **kwargs)
        except ProducerFencedError as exc:
            self._journal_fenced(topic, partition, exc)
            raise
        self._after_append(topic, partition, md.base_offset + md.count, acks)
        return md

    def _journal_fenced(self, topic, partition, exc: ProducerFencedError) -> None:
        self.events.emit(
            "producer_fenced",
            topic=topic,
            partition=int(partition),
            producer_id=exc.producer_id,
            epoch=exc.epoch,
            current_epoch=exc.current_epoch,
        )

    def _after_append(self, topic, partition, end_offset: int, acks) -> None:
        """Replication hand-off for one acknowledged append.

        For ``acks="all"``, wakes the replicator (so the batch ships on
        the next pump cycle instead of the next poll tick) and blocks
        until the partition's high-watermark covers *end_offset* — i.e.
        every in-sync replica holds the records. A stalled ISR surfaces
        as the retriable :class:`NotEnoughReplicasError` rather than an
        indefinite hang. ``acks=leader`` appends deliberately do *not*
        wake the pump: nobody is waiting, and letting the timer batch
        them (interval_s of records per push) keeps the leader's fast
        path within a few percent of an unreplicated shard instead of
        paying a synchronous replica RPC per client append.
        """
        rep = self._replicator
        if rep is None:
            return
        if acks != "all":
            return
        log = Broker.partition_log(self, topic, partition)
        # Arm the visibility fence before waiting: before the pump's
        # first cycle touches this partition the fence is down and the
        # wait would trivially pass, acknowledging records no replica
        # holds (monotonic, so a no-op once armed).
        log.set_high_watermark(0)
        rep.wake()
        if not log.wait_for_high_watermark(end_offset, self.acks_timeout_s):
            raise NotEnoughReplicasError(
                topic, partition, end_offset, self.acks_timeout_s
            )

    def fetch(self, topic, partition, offset, **kwargs):
        self._check_owner(topic, partition)
        return super().fetch(topic, partition, offset, **kwargs)

    def partition_log(self, topic, partition):
        # The reactor's long-poll parking goes through here, so a parked
        # fetch for a foreign partition is rejected up front too.
        self._check_owner(topic, partition)
        return super().partition_log(topic, partition)

    def earliest_offset(self, topic, partition):
        self._check_owner(topic, partition)
        return super().earliest_offset(topic, partition)

    def latest_offset(self, topic, partition):
        self._check_owner(topic, partition)
        if self._replicator is not None:
            # Consumers must not chase offsets past what the ISR holds.
            return Broker.partition_log(self, topic, partition).high_watermark
        return super().latest_offset(topic, partition)

    def partition_depths(self) -> dict:
        """Only the partitions this shard owns (unowned logs are empty
        placeholders); a cluster-wide view is the union over shards.
        On a replicated shard the end offset is the high-watermark, so
        depth accounting matches what consumers can actually fetch."""
        out = {
            tp: d for tp, d in super().partition_depths().items() if self.owns(*tp)
        }
        if self._replicator is not None:
            for (topic, partition), depth in out.items():
                hwm = Broker.partition_log(self, topic, partition).high_watermark
                if hwm < depth["end_offset"]:
                    depth["depth"] = max(
                        0, depth["depth"] - (depth["end_offset"] - hwm)
                    )
                    depth["end_offset"] = hwm
        return out

    # -- group-affine surface ------------------------------------------------

    def commit_offset(self, group, topic, partition, offset) -> None:
        # Commits are group-affine (Kafka's __consumer_offsets rule): the
        # coordinator shard owns a group's offsets even for partitions
        # whose *data* lives elsewhere.
        self._check_group_owner(group)
        super().commit_offset(group, topic, partition, offset)

    def committed_offset(self, group, topic, partition):
        self._check_group_owner(group)
        return super().committed_offset(group, topic, partition)

    def committed_offsets(self, group=None) -> dict:
        if group is not None:
            self._check_group_owner(group)
        return super().committed_offsets(group)

    def consumer_lag(self, group) -> dict:
        """Lag for the partitions this shard owns; the cluster client
        merges committed offsets with cluster-wide depths for the rest."""
        self._check_group_owner(group)
        return {tp: lag for tp, lag in super().consumer_lag(group).items() if self.owns(*tp)}

    # -- idempotent producers ------------------------------------------------

    def register_producer(self, client_id: str) -> tuple[int, int]:
        with self._producers_lock:
            pid = self._producer_ids.get(client_id)
            if pid is None:
                # Strided ids: globally unique without coordination.
                pid = self.shard_index + self.num_shards * len(self._producer_ids)
                self._producer_ids[client_id] = pid
                self._producer_epochs[pid] = 0
            else:
                self._producer_epochs[pid] += 1
            return pid, self._producer_epochs[pid]

    # -- replication surface (leader <-> follower) ---------------------------

    def start_replication(self) -> None:
        """Start the leader-side replication pump (no-op unreplicated)."""
        if self.replication_factor <= 1 or self.num_shards <= 1:
            return
        if self._replicator is None:
            self._replicator = _ShardReplicator(self)
            self._replicator.start()

    def stop_replication(self) -> None:
        rep, self._replicator = self._replicator, None
        if rep is not None:
            rep.stop()

    @property
    def replicating(self) -> bool:
        return self._replicator is not None

    def replicate_append(
        self,
        topic,
        partition,
        *,
        base_offset,
        records,
        leader=0,
        leader_epoch=0,
        high_watermark=0,
        producers=None,
    ) -> dict:
        """Follower-side: install a leader's batch at exact offsets.

        Bypasses the leader guard (a follower by definition does not own
        the partition) but still requires membership in the replica set.
        A stale leader — one deposed by an election this follower has
        already heard about — is fenced by the partition epoch. A gap
        (``base_offset`` past our log end) is refused so the leader
        re-syncs from our actual end; an overlap means our log diverged
        (we were the old leader, or the leader truncated) and the
        leader's view wins: we truncate back to ``base_offset`` first.
        """
        self._check_replica(topic, partition)
        known = self._cluster_meta.partition_epoch(topic, partition)
        if leader_epoch < known:
            raise StaleLeaderEpochError(
                f"{topic}/{partition}", int(leader_epoch), known
            )
        log = Broker.partition_log(self, topic, partition)
        end = log.latest_offset
        base_offset = int(base_offset)
        if base_offset > end:
            return {"accepted": False, "log_end": end, "hwm": log.high_watermark}
        if base_offset < end:
            log.truncate_to(base_offset)
        if records:
            accepted, end = log.install_replica_batch(base_offset, records)
            if not accepted:
                return {"accepted": False, "log_end": end, "hwm": log.high_watermark}
            if producers:
                # Producer dedup state rides with the data so idempotence
                # survives a failover to this replica.
                log.install_producer_state(producers)
        hwm = log.set_high_watermark(min(int(high_watermark), log.latest_offset))
        tracer = self.tracer
        if tracer is not None and records:
            # The producer's trace context rides in each record's
            # headers (the same field the leader's append spans parent
            # on), so the follower's install shows up in the SAME trace:
            # the stitched tree reads produce → leader append →
            # replica install → ack/hwm advance across two processes.
            hops = [
                (rec.headers.get(TRACE_HEADER), {"offset": rec.offset, "leader": int(leader)})
                for rec in records
                if rec.headers and rec.headers.get(TRACE_HEADER)
            ]
            if hops:
                tracer.record_hops("replica.append", hops, site=self.name)
        return {"accepted": True, "log_end": log.latest_offset, "hwm": hwm}

    def replica_ack(self, topic, partition) -> dict:
        """A replica's progress for one partition (leader probe + election)."""
        self._check_replica(topic, partition)
        log = Broker.partition_log(self, topic, partition)
        return {
            "log_end": log.latest_offset,
            "hwm": log.high_watermark,
            "epoch": self._cluster_meta.partition_epoch(topic, partition),
        }

    def replication_status(self) -> dict:
        """ISR / lag / high-watermark state for partitions this shard leads."""
        out = {
            "shard": self.shard_index,
            "replication_factor": self.replication_factor,
            "partitions": [],
        }
        rep = self._replicator
        if rep is not None:
            out["partitions"] = rep.status()
        return out

    # -- cluster wire ops ----------------------------------------------------

    def describe_cluster(self) -> dict:
        meta = self._cluster_meta
        if meta.num_shards == 0:
            raise ValidationError("cluster metadata not initialised on this shard")
        out = meta.to_wire()
        out["shard"] = self.shard_index
        return out

    def find_coordinator(self, group: str) -> dict:
        meta = self._cluster_meta
        idx = coordinator_shard(group, self.num_shards)
        host, port = meta.shards[idx] if idx < meta.num_shards else (None, None)
        return {"shard": idx, "host": host, "port": port, "epoch": meta.epoch}

    def server_metrics(self) -> dict:
        out = {
            "shard": self.shard_index,
            "num_shards": self.num_shards,
            "epoch": self._cluster_meta.epoch,
        }
        if self._server is not None:
            out.update(self._server.metrics())
        return out

    # -- observability wire ops ----------------------------------------------

    def _sync_counter(self, name: str, total) -> None:
        """Mirror a monotonic stats-dict total into a registry counter.

        Incrementing by the positive delta keeps the instrument exact
        while paying the mirroring cost at scrape time (once per
        ``metrics_snapshot``) instead of on the hot path.
        """
        counter = self.registry.counter(name)
        delta = float(total) - counter.value
        if delta > 0:
            counter.inc(delta)

    def _sync_registry(self) -> None:
        """Fold the ad-hoc stats dicts into typed instruments.

        Storage recovery/flush counters, broker-level counters, and the
        reactor's connection gauges only existed in ``stats()`` /
        ``server_metrics()`` dicts; syncing them here puts them on the
        ``/metrics`` surface (and the federated exposition) without
        touching any hot path.
        """
        registry = self.registry
        if registry is None:
            return
        stats = self.stats()
        for key in ("duplicates_dropped", "long_polls_parked", "members_evicted"):
            self._sync_counter(f"broker.{key}", stats.get(key, 0))
        records_in = sum(t.get("records_in", 0) for t in stats.get("topics", {}).values())
        bytes_in = sum(t.get("bytes_in", 0) for t in stats.get("topics", {}).values())
        retained = sum(
            t.get("bytes_retained", 0) for t in stats.get("topics", {}).values()
        )
        self._sync_counter("broker.records_in", records_in)
        self._sync_counter("broker.bytes_in", bytes_in)
        registry.gauge("broker.bytes_retained").set(retained)
        storage = stats.get("storage")
        if storage:
            for key, value in storage.items():
                if key in ("stores", "size_bytes", "pending_bytes"):
                    registry.gauge(f"storage.{key}").set(float(value))
                elif isinstance(value, (int, float)):
                    self._sync_counter(f"storage.{key}", value)
        server = self._server
        if server is not None:
            for key, value in server.metrics().items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    registry.gauge(f"server.{key}").set(float(value))

    def metrics_snapshot(self) -> dict:
        """The ``metrics_snapshot`` wire op: this shard's typed registry
        snapshot, or a disabled marker when telemetry is off (the
        aggregator skips those instead of fabricating zeros)."""
        registry = self.registry
        if registry is None:
            return {"shard": self.shard_index, "enabled": False}
        self._sync_registry()
        snap = registry.snapshot()
        snap["shard"] = self.shard_index
        snap["enabled"] = True
        return snap

    def events_since(self, since: int = 0) -> dict:
        """The ``events_since`` wire op: journal delta past cursor *since*.

        ``boot`` lets a collector detect that this is a *different
        process* than the one its cursor came from (a respawn) and
        re-drain from zero.
        """
        journal = self.events
        return {
            "shard": self.shard_index,
            "boot": journal.boot,
            "next_seq": journal.next_seq,
            "events": [e.to_dict() for e in journal.events_since(int(since))],
        }

    def trace_spans(self, since: int = 0) -> dict:
        """The ``trace_spans`` wire op: finished spans past index *since*.

        The tracer's retained-span list is append-ordered, so a plain
        index is a stable cursor; same ``boot`` protocol as the journal.
        """
        out = {
            "shard": self.shard_index,
            "boot": self.events.boot,
            "next": 0,
            "spans": [],
        }
        tracer = self.tracer
        if tracer is None:
            return out
        spans = tracer.spans()
        cursor = max(0, int(since))
        out["next"] = len(spans)
        out["spans"] = [s.to_dict() for s in spans[cursor:]]
        return out


# -- the replication pump ----------------------------------------------------


class _ShardReplicator:
    """Leader-side replication pump: one background thread per shard.

    Every cycle it walks the partitions this shard currently leads and,
    per follower replica, pushes the records past the follower's last
    acknowledged offset over the same pipelined wire protocol clients
    use (``replicate_append``). Ack progress feeds two derived states:

    - the **ISR** — a follower joins once it acks within
      ``max_lag_records`` of the leader's log end, and is evicted when it
      has not acked for ``isr_timeout_s`` (covering both dead processes
      and partitioned links; :meth:`FaultInjector.on_replication` can
      sever a link deterministically for tests);
    - the **high-watermark** — the minimum acked offset across the ISR
      (leader log end when the ISR has shrunk to the leader alone, the
      Kafka rule), installed into the partition log so consumers and
      ``acks="all"`` producers only ever see ISR-covered records.

    The pump is edge-triggered by appends (``wake``) and level-polled at
    ``interval_s`` otherwise, so replication latency stays well under a
    producer round-trip without busy-spinning an idle shard.
    """

    def __init__(
        self,
        broker: "ShardBroker",
        interval_s: float = 0.02,
        max_lag_records: int = 256,
        isr_timeout_s: float = 2.0,
    ) -> None:
        self._broker = broker
        self.interval_s = float(interval_s)
        self.max_lag_records = int(max_lag_records)
        self.isr_timeout_s = float(isr_timeout_s)
        # Instruments resolved once (the registry's get-or-create lock
        # is off the pump's per-push path); None with telemetry off.
        registry = broker.registry
        self._ack_latency = (
            registry.histogram("replication.ack_latency_seconds")
            if registry is not None
            else None
        )
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None
        self._remotes: dict[int, RemoteBroker] = {}
        # (topic, partition) -> {follower_index: progress dict}; guarded
        # by _lock only for *structural* changes (status() snapshots).
        self._progress: dict = {}
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run,
            name=f"replicator-{self._broker.shard_index}",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._stopping.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for index in list(self._remotes):
            self._drop_remote(index)

    def wake(self) -> None:
        self._wake.set()

    def _run(self) -> None:
        while not self._stopping.is_set():
            self._wake.wait(self.interval_s)
            self._wake.clear()
            if self._stopping.is_set():
                return
            try:
                self._tick()
            except Exception:
                # The pump must survive anything one cycle throws
                # (metadata mid-swap, topic deleted underneath it);
                # the next cycle re-reads the world and recovers.
                continue

    # -- follower connections ------------------------------------------------

    def _remote(self, index: int, meta: ClusterMetadata) -> RemoteBroker:
        remote = self._remotes.get(index)
        if remote is not None:
            return remote
        host, port = meta.shards[index]
        # Tight budgets: a slow follower must stall one pump cycle,
        # never wedge the leader (ISR eviction handles the rest).
        remote = RemoteBroker(
            host,
            port,
            connect_timeout=0.5,
            op_timeout=2.0,
            max_attempts=1,
            max_in_flight_requests=1,
        )
        self._remotes[index] = remote
        return remote

    def _drop_remote(self, index: int) -> None:
        remote = self._remotes.pop(index, None)
        if remote is not None:
            try:
                remote.close()
            except Exception:
                pass

    # -- the pump ------------------------------------------------------------

    def _tick(self) -> None:
        broker = self._broker
        meta = broker._cluster_meta
        if meta.num_shards != broker.num_shards:
            return
        led = set()
        for name in broker.list_topics():
            topic = broker.topic(name)
            for partition in range(topic.num_partitions):
                if broker._leader_index(name, partition) != broker.shard_index:
                    continue
                led.add((name, partition))
                self._pump_partition(name, partition, meta)
        # Drop progress for partitions whose leadership moved away, so a
        # deposed leader's stale ISR never reappears in status().
        with self._lock:
            for tp in [tp for tp in self._progress if tp not in led]:
                del self._progress[tp]

    def _pump_partition(self, name: str, partition: int, meta) -> None:
        broker = self._broker
        log = Broker.partition_log(broker, name, partition)
        followers = [
            i
            for i in broker._replica_indices(name, partition)
            if i != broker.shard_index
        ]
        if not followers:
            log.set_high_watermark(log.latest_offset)
            return
        with self._lock:
            progress = self._progress.setdefault((name, partition), {})
        epoch = meta.partition_epoch(name, partition)
        leader_end = log.latest_offset
        now = time.monotonic()
        for index in followers:
            with self._lock:
                state = progress.setdefault(
                    index, {"acked": None, "last_good": now, "in_isr": False}
                )
            try:
                injector = broker.fault_injector
                if injector is not None:
                    on_replication = getattr(injector, "on_replication", None)
                    if on_replication is not None:
                        on_replication(broker.shard_index, index)
                remote = self._remote(index, meta)
                if state["acked"] is None:
                    # First contact: resume from the follower's log end,
                    # capped at our *high-watermark* — below it every
                    # replica's content is identical by the ISR
                    # invariant, above it the follower's suffix may
                    # diverge (it could be a deposed leader), so the
                    # first push re-sends from there and truncates the
                    # follower's divergent tail.
                    ack = remote.replica_ack(name, partition)
                    state["acked"] = min(int(ack["log_end"]), log.high_watermark)
                if state["acked"] < leader_end:
                    records, _, visible = log.replication_slice(state["acked"])
                    push_start = time.perf_counter()
                    response = remote.replicate_append(
                        name,
                        partition,
                        base_offset=state["acked"],
                        records=records,
                        leader=broker.shard_index,
                        leader_epoch=epoch,
                        high_watermark=visible,
                        producers=log.producer_snapshot() if records else None,
                    )
                    if self._ack_latency is not None:
                        self._ack_latency.observe(time.perf_counter() - push_start)
                    if response.get("accepted"):
                        state["acked"] = int(response["log_end"])
                        self._trace_acks(records, index, response)
                    else:
                        # Gap or divergence: re-anchor on the follower's
                        # reported end and retry next cycle.
                        state["acked"] = min(
                            int(response.get("log_end", 0)), leader_end
                        )
                elif now - state["last_good"] >= self.interval_s:
                    # Caught up: empty push keeps the follower's
                    # high-watermark (and our liveness view) fresh.
                    # Rate-limited to the timer interval so a burst of
                    # ``acks="all"`` wake-ups does not turn every
                    # caught-up partition into a heartbeat RPC per
                    # client append.
                    remote.replicate_append(
                        name,
                        partition,
                        base_offset=state["acked"],
                        records=[],
                        leader=broker.shard_index,
                        leader_epoch=epoch,
                        high_watermark=log.high_watermark,
                    )
                else:
                    continue
                state["last_good"] = now
                if (
                    not state["in_isr"]
                    and leader_end - state["acked"] <= self.max_lag_records
                ):
                    state["in_isr"] = True
                    broker.events.emit(
                        "isr_join",
                        topic=name,
                        partition=partition,
                        follower=index,
                        lag=max(0, leader_end - state["acked"]),
                        epoch=epoch,
                    )
            except Exception:
                # Unreachable / refused / link-partitioned follower: a
                # fresh connection is cheap, a wedged one is not.
                self._drop_remote(index)
                if state["in_isr"] and now - state["last_good"] > self.isr_timeout_s:
                    state["in_isr"] = False
                    broker.events.emit(
                        "isr_evict",
                        topic=name,
                        partition=partition,
                        follower=index,
                        silent_s=round(now - state["last_good"], 3),
                        epoch=epoch,
                    )
        # Kafka's rule: the high-watermark is the ISR's minimum acked
        # offset; with every follower evicted the ISR is the leader
        # alone and the watermark tracks its log end. One refinement
        # closes a startup hole: a follower that has never joined the
        # ISR (or just lost membership) still *holds* the watermark for
        # an isr_timeout_s grace window, so ``acks="all"`` cannot ack
        # records that exist nowhere but on a leader whose replicas
        # simply have not caught up yet. Only a follower that stays
        # unresponsive past the window is written off.
        floor = []
        for state in progress.values():
            if state["in_isr"] and state["acked"] is not None:
                floor.append(state["acked"])
            elif not state["in_isr"] and now - state["last_good"] <= self.isr_timeout_s:
                floor.append(state["acked"] or 0)
        hwm = log.set_high_watermark(
            min([leader_end] + floor) if floor else leader_end
        )
        registry = broker.registry
        if registry is not None:
            registry.gauge(f"replication.hwm_lag.{name}.{partition}").set(
                max(0, leader_end - hwm)
            )

    def _trace_acks(self, records, follower: int, response: dict) -> None:
        """Stitch the replication hop into the producer's trace.

        Each replicated record still carries the producer's trace
        context in its headers; one ``replication.ack`` leaf per traced
        record, recorded on the *leader*, pairs with the follower's
        ``replica.append`` hop so the stitched tree shows both sides of
        the wire crossing.
        """
        tracer = self._broker.tracer
        if tracer is None or not records:
            return
        hwm = response.get("hwm", 0)
        hops = [
            (rec.headers.get(TRACE_HEADER), {"follower": follower, "hwm": hwm})
            for rec in records
            if rec.headers and rec.headers.get(TRACE_HEADER)
        ]
        if hops:
            tracer.record_hops(
                "replication.ack", hops, site=self._broker.name
            )

    # -- introspection -------------------------------------------------------

    def status(self) -> list:
        broker = self._broker
        meta = broker._cluster_meta
        out = []
        with self._lock:
            snapshot = [
                (tp, [(i, dict(state)) for i, state in progress.items()])
                for tp, progress in self._progress.items()
            ]
        for (name, partition), entries in sorted(snapshot):
            log = Broker.partition_log(broker, name, partition)
            leader_end = log.latest_offset
            followers = []
            isr = [broker.shard_index]
            for index, state in sorted(entries):
                acked = state["acked"]
                followers.append(
                    {
                        "shard": index,
                        "acked": acked,
                        "lag": leader_end - acked if acked is not None else leader_end,
                        "in_isr": state["in_isr"],
                    }
                )
                if state["in_isr"]:
                    isr.append(index)
            expected = len(broker._replica_indices(name, partition))
            out.append(
                {
                    "topic": name,
                    "partition": partition,
                    "leader": broker.shard_index,
                    "epoch": meta.partition_epoch(name, partition),
                    "log_end": leader_end,
                    "high_watermark": log.high_watermark,
                    "isr": sorted(isr),
                    "followers": followers,
                    "under_replicated": len(isr) < expected,
                }
            )
        return out


# -- the worker process ------------------------------------------------------


def _shard_worker_main(
    index: int,
    num_shards: int,
    host: str,
    port: int,
    topics,
    control_conn,
    opts: dict,
) -> None:
    """Entry point of one shard process (module-level: picklable).

    Two-phase startup: bind (ephemeral or respawn-pinned port), report
    the bound address on *control_conn*, then block for the full cluster
    map on the same pipe before serving — so no shard ever answers
    ``describe_cluster`` with a partial address list. Afterwards the
    control pipe carries epoch bumps and the stop signal; EOF (parent
    gone) also stops, so an orphaned worker exits instead of lingering.

    All parent<->worker traffic rides the per-worker pipe on purpose: a
    shared multiprocessing.Queue dies with its writers — a SIGKILLed
    shard can take the queue's shared write-lock to the grave, wedging
    every later sender — while a killed worker can only ever corrupt its
    *own* pipe, and its respawn gets a fresh one.
    """
    broker = ShardBroker(
        shard_index=index,
        num_shards=num_shards,
        replication_factor=opts.get("replication_factor", 1),
        log_dir=opts.get("log_dir"),
        storage=opts.get("storage"),
        telemetry=opts.get("telemetry", False),
        trace_sample=opts.get("trace_sample", 1.0),
    )
    # With a log_dir, create_topic opens the segment stores and runs
    # crash recovery NOW — before the cluster map arrives and replication
    # starts — so a respawned shard rejoins the ISR with its durable log
    # (offsets, records, producer dedup state) already restored from
    # disk, and the leader only streams the delta.
    for name, partitions in topics:
        broker.create_topic(name, num_partitions=partitions, exist_ok=True)
    deadline = time.monotonic() + opts.get("bind_timeout", 5.0)
    while True:
        try:
            server = ReactorBrokerServer(
                broker,
                host=host,
                port=port,
                num_workers=opts.get("num_workers", 4),
            )
            break
        except OSError as exc:
            # A respawn can race the dying process's port; retry briefly.
            if time.monotonic() >= deadline:
                control_conn.send(("error", index, f"bind failed: {exc}"))
                return
            time.sleep(0.05)
    control_conn.send(("bound", index, server.host, server.port))
    try:
        msg = control_conn.recv()
    except (EOFError, OSError):
        return
    if msg[0] != "cluster":
        return
    broker.set_cluster(msg[1], msg[2], leaders=msg[3] if len(msg) > 3 else ())
    server.start()
    broker.start_replication()
    try:
        while True:
            try:
                msg = control_conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] in ("cluster", "epoch"):
                broker.set_cluster(
                    msg[1], msg[2], leaders=msg[3] if len(msg) > 3 else ()
                )
            elif msg[0] == "stop":
                break
    finally:
        # Drains parked long-polls (clients see EOF, not a hang) and
        # joins the reactor + worker threads before the process exits.
        broker.stop_replication()
        server.stop()
        broker.close()  # final flush + producer snapshots to disk
        try:
            control_conn.close()
        except OSError:
            pass


class ClusterBrokerSupervisor:
    """Spawns and supervises N shard processes on one host.

    Startup is two-phase: every worker binds and reports its address,
    then the supervisor broadcasts the complete map (epoch 1) and the
    workers begin serving. With ``restart=True`` a monitor thread
    respawns any shard that dies on its *original* port and broadcasts a
    bumped epoch — in-memory log/group state on the dead shard is lost
    (replication is ROADMAP item 1), but clients reconnect and resume.

    ``stop()`` signals every worker over its control pipe (each worker's
    ``server.stop()`` drains parked long-polls and joins its threads),
    joins every process, and escalates terminate → kill for stragglers,
    so no orphaned processes or sockets survive it.
    """

    def __init__(
        self,
        num_shards: int = 2,
        host: str = "127.0.0.1",
        topics=None,
        restart: bool = False,
        num_workers: int = 4,
        start_timeout: float = 30.0,
        replication_factor: int = 1,
        log_dir: str | None = None,
        storage=None,
        telemetry: bool = False,
        trace_sample: float = 1.0,
    ) -> None:
        if num_shards < 1:
            raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
        if not 1 <= replication_factor <= num_shards:
            raise ValidationError(
                f"replication_factor must be in [1, {num_shards}], "
                f"got {replication_factor}"
            )
        self.num_shards = int(num_shards)
        self.host = host
        self.topics = [(str(n), int(p)) for n, p in (topics or [])]
        self.restart = bool(restart)
        self.num_workers = int(num_workers)
        self.start_timeout = float(start_timeout)
        self.replication_factor = int(replication_factor)
        #: Root for durable shard logs; each shard gets its own subtree
        #: (``{log_dir}/shard-{index}``) that a respawn on the same index
        #: recovers from — the disk survives the SIGKILL even though the
        #: process does not. ``storage`` is an optional StorageConfig
        #: (picklable, shipped to the workers).
        self.log_dir = log_dir
        self.storage = storage
        #: Ship per-record instrumentation (registry + tracer) to every
        #: shard; the control-plane journals are always on regardless.
        self.telemetry = bool(telemetry)
        self.trace_sample = float(trace_sample)
        #: The supervisor's own control-plane journal: deaths, elections
        #: and respawns are *its* story — the shard that died cannot
        #: narrate its own funeral.
        self.events = EventJournal(origin="supervisor")
        self.epoch = 0
        #: Shards respawned by the monitor thread (chaos accounting).
        self.restarts = 0
        #: Leader elections performed after shard deaths (chaos accounting).
        self.elections = 0
        # (topic, partition) -> (leader shard, partition epoch): the
        # failover override table, empty while every hash slot is alive.
        self._leaders: dict = {}
        self._ctx = multiprocessing.get_context()
        self._procs: list = [None] * self.num_shards
        self._pipes: list = [None] * self.num_shards
        self._addresses: list = [None] * self.num_shards
        self._lock = threading.Lock()
        self._stop_lock = threading.Lock()
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, index: int, port: int):
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                index,
                self.num_shards,
                self.host,
                port,
                self.topics,
                child_conn,
                {
                    "num_workers": self.num_workers,
                    "replication_factor": self.replication_factor,
                    "log_dir": (
                        os.path.join(self.log_dir, f"shard-{index}")
                        if self.log_dir
                        else None
                    ),
                    "storage": self.storage,
                    "telemetry": self.telemetry,
                    "trace_sample": self.trace_sample,
                },
            ),
            name=f"broker-shard-{index}",
            daemon=True,  # orphan safety net: workers die with the parent
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _await_bound(self, expect: set, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while expect:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"shards {sorted(expect)} did not bind within {timeout:.0f}s"
                )
            pipes = {self._pipes[index]: index for index in expect}
            for pipe in connection_wait(list(pipes), timeout=remaining):
                index = pipes[pipe]
                try:
                    msg = pipe.recv()
                except (EOFError, OSError):
                    raise RuntimeError(
                        f"shard {index} exited before binding"
                    ) from None
                if msg[0] == "error":
                    raise RuntimeError(
                        f"shard {msg[1]} failed to start: {msg[2]}"
                    )
                _, _, host, port = msg
                self._addresses[index] = (host, port)
                expect.discard(index)

    def _leaders_wire(self) -> list:
        return [
            [t, p, s, e] for (t, p), (s, e) in sorted(self._leaders.items())
        ]

    def _broadcast(self, tag: str) -> None:
        payload = (tag, list(self._addresses), self.epoch, self._leaders_wire())
        for pipe in self._pipes:
            if pipe is None:
                continue
            try:
                pipe.send(payload)
            except (BrokenPipeError, OSError):
                pass  # dead shard; the monitor (if any) will respawn it

    def start(self) -> "ClusterBrokerSupervisor":
        if self._started:
            raise RuntimeError("supervisor already started")
        self._started = True
        self._stopping.clear()
        for index in range(self.num_shards):
            self._procs[index], self._pipes[index] = self._spawn(index, port=0)
        try:
            self._await_bound(set(range(self.num_shards)), self.start_timeout)
        except Exception:
            self._teardown()
            raise
        self.epoch = 1
        for index, (host, port) in enumerate(self._addresses):
            proc = self._procs[index]
            self.events.emit(
                "shard_started",
                shard=index,
                host=host,
                port=port,
                pid=proc.pid if proc is not None else None,
            )
        self._broadcast("cluster")
        if self.restart:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="cluster-monitor", daemon=True
            )
            self._monitor.start()
        return self

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(0.05):
            for index in range(self.num_shards):
                proc = self._procs[index]
                if proc is None or proc.is_alive() or self._stopping.is_set():
                    continue
                with self._lock:
                    if self._stopping.is_set():
                        return
                    proc.join(timeout=0)
                    self.events.emit(
                        "shard_died",
                        shard=index,
                        pid=proc.pid,
                        exitcode=proc.exitcode,
                    )
                    old_pipe = self._pipes[index]
                    if old_pipe is not None:
                        try:
                            old_pipe.close()
                        except OSError:
                            pass
                    # Failover before respawn: move leadership for the
                    # dead shard's partitions onto their most-caught-up
                    # surviving replica and broadcast immediately, so
                    # clients resume against the new leader while the
                    # replacement process is still starting (this is the
                    # failover MTTR the bench guard bounds).
                    if self.replication_factor > 1 and self._elect_leaders(index):
                        self.epoch += 1
                        self._broadcast("cluster")
                    # Same port: clients that never noticed the crash
                    # keep a valid address; ones that did simply redial.
                    _, port = self._addresses[index]
                    self._procs[index], self._pipes[index] = self._spawn(index, port)
                    try:
                        self._await_bound({index}, self.start_timeout)
                    except RuntimeError:
                        continue  # next tick tries again
                    if self._stopping.is_set():
                        # stop() raced the respawn; it owns teardown of
                        # the fresh worker — do not re-advertise it.
                        return
                    self.epoch += 1
                    self.restarts += 1
                    new_proc = self._procs[index]
                    self.events.emit(
                        "shard_respawned",
                        shard=index,
                        pid=new_proc.pid if new_proc is not None else None,
                        epoch=self.epoch,
                    )
                    # The respawned shard receives the override table in
                    # this broadcast, so it rejoins as a *follower* for
                    # any partition it used to lead and re-syncs from the
                    # elected leader (truncating divergence).
                    self._broadcast("cluster")

    def _elect_leaders(self, dead_index: int) -> bool:
        """Re-home leadership for every partition *dead_index* led.

        The winner is the surviving replica with the longest log — by the
        ISR invariant (the high-watermark never passes the slowest ISR
        member) it holds every record any ``acks="all"`` producer was
        ever acknowledged for, so election never loses acked data. Each
        moved partition's epoch is bumped to fence late pushes from the
        deposed leader. Only partitions of supervisor-declared topics are
        governed; dynamically created topics are unreplicated.
        """
        changed = False
        remotes: dict[int, RemoteBroker] = {}
        try:
            for name, partitions in self.topics:
                for partition in range(partitions):
                    replicas = replica_indices(
                        name, partition, self.num_shards, self.replication_factor
                    )
                    current, part_epoch = self._leaders.get(
                        (name, partition), (replicas[0], 0)
                    )
                    if current != dead_index:
                        continue
                    best, best_end = None, -1
                    for idx in replicas:
                        if idx == dead_index or not self.is_alive(idx):
                            continue
                        try:
                            remote = remotes.get(idx)
                            if remote is None:
                                host, port = self._addresses[idx]
                                remote = remotes[idx] = RemoteBroker(
                                    host,
                                    port,
                                    connect_timeout=1.0,
                                    op_timeout=2.0,
                                    max_attempts=1,
                                )
                            end = int(remote.replica_ack(name, partition)["log_end"])
                        except (BrokerError, ConnectionError, OSError):
                            continue
                        if end > best_end:
                            best, best_end = idx, end
                    if best is None:
                        continue  # no live replica; respawn restores the slot
                    self._leaders[(name, partition)] = (best, part_epoch + 1)
                    self.elections += 1
                    self.events.emit(
                        "leader_elected",
                        topic=name,
                        partition=partition,
                        leader=best,
                        previous=dead_index,
                        epoch=part_epoch + 1,
                        log_end=best_end,
                    )
                    changed = True
        finally:
            for remote in remotes.values():
                try:
                    remote.close()
                except Exception:
                    pass
        return changed

    def stop(self) -> None:
        # Serialised against concurrent stop() calls, and hands the
        # monitor a stop signal *before* joining it so an in-flight
        # respawn finishes (or aborts) under its own lock — teardown then
        # sweeps whatever set of processes actually exists.
        with self._stop_lock:
            if not self._started:
                return
            self._started = False
            self._stopping.set()
            monitor, self._monitor = self._monitor, None
        if monitor is not None:
            # A respawn can legitimately take up to start_timeout inside
            # _await_bound; joining shorter than that leaks the thread.
            monitor.join(timeout=self.start_timeout + 10)
        with self._lock:
            self._teardown()

    def _teardown(self) -> None:
        for pipe in self._pipes:
            if pipe is None:
                continue
            try:
                pipe.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 10.0
        for escalate in (None, "terminate", "kill"):
            for proc in self._procs:
                if proc is None or not proc.is_alive():
                    continue
                if escalate is not None:
                    getattr(proc, escalate)()
                proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for index, proc in enumerate(self._procs):
            if proc is not None:
                proc.join(timeout=1.0)
                self._procs[index] = None
        for index, pipe in enumerate(self._pipes):
            if pipe is not None:
                try:
                    pipe.close()
                except OSError:
                    pass
                self._pipes[index] = None

    def __enter__(self) -> "ClusterBrokerSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- introspection / chaos -----------------------------------------------

    @property
    def addresses(self) -> list:
        return [addr for addr in self._addresses if addr is not None]

    @property
    def bootstrap(self) -> list:
        """Alias clients pass straight to :class:`ClusterBroker`."""
        return self.addresses

    def describe_cluster(self) -> dict:
        return ClusterMetadata(
            self.epoch,
            tuple(self.addresses),
            replication_factor=self.replication_factor,
            leaders=tuple(
                (t, p, s, e) for (t, p), (s, e) in sorted(self._leaders.items())
            ),
        ).to_wire()

    def partition_leader(self, topic: str, partition: int) -> int:
        """The shard currently leading one partition (override or hash)."""
        entry = self._leaders.get((topic, partition))
        if entry is not None:
            return entry[0]
        return shard_for_partition(topic, partition, self.num_shards)

    def is_alive(self, index: int) -> bool:
        proc = self._procs[index]
        return proc is not None and proc.is_alive()

    def kill_shard(self, index: int) -> int:
        """SIGKILL one shard (chaos testing); returns the dead pid."""
        proc = self._procs[index]
        if proc is None or proc.pid is None:
            raise ValidationError(f"shard {index} is not running")
        pid = proc.pid
        os.kill(pid, signal.SIGKILL)
        proc.join(timeout=10)
        return pid


# -- the cluster-aware client ------------------------------------------------


class _ClusterCoordinator:
    """Routes each group's coordination to its coordinator shard."""

    def __init__(self, cluster: "ClusterBroker") -> None:
        self._cluster = cluster

    def join(self, group_id, member_id, topics, strategy=None, session_timeout_ms=None):
        if strategy is not None:
            raise ValidationError("remote coordinator uses the server's strategy")
        topics = list(topics)
        return self._cluster._group_invoke(
            group_id,
            lambda r: r.coordinator.join(
                group_id, member_id, topics, session_timeout_ms=session_timeout_ms
            ),
        )

    def leave(self, group_id, member_id):
        self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.leave(group_id, member_id)
        )

    def heartbeat(self, group_id, member_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.heartbeat(group_id, member_id)
        )

    def assignment(self, group_id, member_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.assignment(group_id, member_id)
        )

    def generation(self, group_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.generation(group_id)
        )

    def group_ids(self):
        """Union over every shard (each only knows the groups it hosts)."""
        ids: set[str] = set()
        for remote in self._cluster._live_remotes():
            try:
                ids.update(remote.coordinator.group_ids())
            except (BrokerError, ConnectionError, OSError):
                continue
        return sorted(ids)

    def members(self, group_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.members(group_id)
        )

    def group_topics(self, group_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.group_topics(group_id)
        )

    def committed_offsets(self, group_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.committed_offsets(group_id)
        )


class ClusterBroker:
    """Cluster-aware client: one pipelined connection per shard, ops
    routed by the same ownership rule the shards enforce.

    Presents the same broker surface as :class:`RemoteBroker`, so
    :class:`~repro.broker.producer.Producer` and
    :class:`~repro.broker.consumer.Consumer` work against it unchanged.
    On :class:`NotOwnerError` (always raised before the op applied —
    safe for every op) or connection loss (safe only for idempotent
    ops), the client refreshes metadata with capped exponential backoff
    and re-routes; the per-shard connections' correlation-id pipelining,
    deadlines, and replay rules are :class:`RemoteBroker`'s, reused
    unchanged.
    """

    def __init__(
        self,
        bootstrap,
        connect_timeout: float = 5.0,
        op_timeout: float = 10.0,
        max_attempts: int = 3,
        reconnect_backoff_ms: float = 50.0,
        max_in_flight_requests: int = 5,
        link=None,
        tracer=None,
        metadata: ClusterMetadata | None = None,
    ) -> None:
        bootstrap = [(str(h), int(p)) for h, p in bootstrap]
        if not bootstrap:
            raise ValidationError("bootstrap needs at least one (host, port) address")
        self._bootstrap = bootstrap
        self.connect_timeout = float(connect_timeout)
        self.op_timeout = float(op_timeout)
        self.max_attempts = max(1, int(max_attempts))
        self.reconnect_backoff_ms = float(reconnect_backoff_ms)
        self._max_backoff_s = 2.0
        self.link = link
        self._tracer = tracer
        self.max_in_flight_requests = int(max_in_flight_requests)
        self.name = f"cluster://{bootstrap[0][0]}:{bootstrap[0][1]}"
        self.coordinator = _ClusterCoordinator(self)
        #: Successful metadata refreshes (bootstrap + re-routes).
        self.metadata_refreshes = 0
        self._fault_injector = None
        self._remotes: dict[tuple, RemoteBroker] = {}
        self._remotes_lock = threading.Lock()
        self._closed = False
        self._meta: ClusterMetadata | None = metadata
        if self._meta is None:
            self.refresh_metadata()

    # -- metadata ------------------------------------------------------------

    @property
    def metadata(self) -> ClusterMetadata:
        return self._meta

    @property
    def num_shards(self) -> int:
        return self._meta.num_shards

    @property
    def epoch(self) -> int:
        return self._meta.epoch

    def describe_cluster(self) -> dict:
        return self._meta.to_wire()

    def find_coordinator(self, group: str) -> dict:
        meta = self._meta
        idx = meta.coordinator_index(group)
        host, port = meta.shards[idx]
        return {"shard": idx, "host": host, "port": port, "epoch": meta.epoch}

    def refresh_metadata(self) -> ClusterMetadata:
        """Re-fetch the shard map from any responsive shard.

        Walks current shards first, then the bootstrap list; accepts only
        maps at least as new as the one held (epochs never go backwards).
        When nobody answers, the stale map is kept — the bounded retry
        loops above this decide when to give up.
        """
        candidates: list[tuple] = []
        meta = self._meta
        if meta is not None:
            candidates.extend(meta.shards)
        for addr in self._bootstrap:
            if addr not in candidates:
                candidates.append(addr)
        last_exc: Exception | None = None
        for addr in candidates:
            try:
                fresh = ClusterMetadata.from_wire(
                    self._remote(addr).describe_cluster()
                )
            except (BrokerError, ConnectionError, OSError) as exc:
                last_exc = exc
                continue
            if meta is None or fresh.epoch >= meta.epoch:
                self._meta = fresh
                self.metadata_refreshes += 1
                return fresh
        if meta is not None:
            return meta
        raise DisconnectedError(
            f"could not bootstrap cluster metadata from {candidates}: {last_exc}"
        ) from last_exc

    # -- connections ---------------------------------------------------------

    def _remote(self, address: tuple) -> RemoteBroker:
        with self._remotes_lock:
            if self._closed:
                raise DisconnectedError(f"{self.name} is closed")
            remote = self._remotes.get(address)
        if remote is not None:
            return remote
        host, port = address
        remote = RemoteBroker(
            host,
            port,
            connect_timeout=self.connect_timeout,
            op_timeout=self.op_timeout,
            max_attempts=self.max_attempts,
            reconnect_backoff_ms=self.reconnect_backoff_ms,
            max_in_flight_requests=self.max_in_flight_requests,
            link=self.link,
            tracer=self._tracer,
        )
        remote.fault_injector = self._fault_injector
        with self._remotes_lock:
            if self._closed:
                remote.close()
                raise DisconnectedError(f"{self.name} is closed")
            existing = self._remotes.setdefault(address, remote)
        if existing is not remote:
            remote.close()
        return existing

    def _live_remotes(self):
        """Connected shard handles, skipping addresses that refuse."""
        for addr in self._meta.shards:
            try:
                yield self._remote(addr)
            except (ConnectionError, OSError):
                continue

    @property
    def fault_injector(self):
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(self, injector) -> None:
        self._fault_injector = injector
        with self._remotes_lock:
            remotes = list(self._remotes.values())
        for remote in remotes:
            remote.fault_injector = injector

    def close(self) -> None:
        with self._remotes_lock:
            self._closed = True
            remotes, self._remotes = list(self._remotes.values()), {}
        for remote in remotes:
            remote.close()

    def __enter__(self) -> "ClusterBroker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- routing core --------------------------------------------------------

    def _invoke(self, pick, fn, replayable: bool = True):
        """Route one op: pick a shard from the current map, run it, and
        on NotOwner / connection loss refresh metadata and re-route.

        A ``NotOwnerError`` is always retried (the shard rejected the op
        before applying it); transport failures are retried only for
        replayable ops — the same rule :class:`RemoteBroker` applies to
        its own reconnects.
        """
        last_exc: Exception | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                time.sleep(
                    min(
                        self.reconnect_backoff_ms / 1000.0 * (2 ** (attempt - 1)),
                        self._max_backoff_s,
                    )
                )
            try:
                remote = self._remote(pick(self._meta))
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                self.refresh_metadata()
                continue
            try:
                return fn(remote)
            except RemoteRetriableError as exc:
                if exc.error_name != "NotOwnerError":
                    raise
                last_exc = exc
                self.refresh_metadata()
                continue
            except (DisconnectedError, BrokerTimeoutError) as exc:
                last_exc = exc
                if not replayable:
                    raise
                self.refresh_metadata()
                continue
        if isinstance(last_exc, BrokerError):
            raise last_exc
        raise DisconnectedError(
            f"op failed after {self.max_attempts} routed attempts on "
            f"{self.name}: {last_exc}"
        ) from last_exc

    def _partition_invoke(self, topic, partition, fn, replayable: bool = True):
        return self._invoke(lambda m: m.owner(topic, partition), fn, replayable)

    def _group_invoke(self, group, fn):
        # Group ops (joins, heartbeats, commits) are all replayable:
        # joins/commits are idempotent upserts, heartbeats are reads.
        return self._invoke(lambda m: m.coordinator(group), fn)

    def _any_invoke(self, fn):
        """Run *fn* against any responsive shard (topic metadata, etc.)."""
        last_exc: Exception | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                time.sleep(
                    min(
                        self.reconnect_backoff_ms / 1000.0 * (2 ** (attempt - 1)),
                        self._max_backoff_s,
                    )
                )
            for addr in self._meta.shards:
                try:
                    return fn(self._remote(addr))
                except (
                    RemoteRetriableError,
                    DisconnectedError,
                    BrokerTimeoutError,
                    ConnectionError,
                    OSError,
                ) as exc:
                    last_exc = exc
                    continue
            self.refresh_metadata()
        raise DisconnectedError(
            f"no shard answered after {self.max_attempts} sweeps on "
            f"{self.name}: {last_exc}"
        ) from last_exc

    # -- broker surface used by Producer/Consumer -----------------------------

    def create_topic(self, name: str, num_partitions: int = 1, exist_ok: bool = False):
        """Create the topic on *every* shard (full partition set each —
        ownership is enforced per op, not per log)."""
        out = None
        for index, addr in enumerate(self._meta.shards):
            topic = self._remote(addr).create_topic(
                name,
                num_partitions=num_partitions,
                # Only the first shard honours the caller's exist_ok so a
                # duplicate create fails exactly once, like one broker.
                exist_ok=exist_ok if index == 0 else True,
            )
            out = out if out is not None else topic
        return out

    def topic(self, name: str):
        return self._any_invoke(lambda r: r.topic(name))

    def list_topics(self) -> list:
        return self._any_invoke(lambda r: r.list_topics())

    def register_producer(self, client_id: str) -> tuple[int, int]:
        # Producer registration is hashed like a group id so the same
        # client id always re-registers (and epoch-fences) on one shard.
        return self._invoke(
            lambda m: m.coordinator(client_id),
            lambda r: r.register_producer(client_id),
        )

    def append(
        self,
        topic,
        partition,
        value,
        key=None,
        headers=None,
        produce_ts=None,
        producer_id=None,
        producer_epoch=0,
        sequence=None,
        acks=None,
    ):
        return self._partition_invoke(
            topic,
            partition,
            lambda r: r.append(
                topic,
                partition,
                value,
                key=key,
                headers=headers,
                produce_ts=produce_ts,
                producer_id=producer_id,
                producer_epoch=producer_epoch,
                sequence=sequence,
                acks=acks,
            ),
            replayable=producer_id is not None,
        )

    def append_many(
        self,
        topic,
        partition,
        values,
        keys=None,
        headers=None,
        produce_ts=None,
        producer_id=None,
        producer_epoch=0,
        base_sequence=None,
        acks=None,
    ):
        values = list(values)
        return self._partition_invoke(
            topic,
            partition,
            lambda r: r.append_many(
                topic,
                partition,
                values,
                keys=keys,
                headers=headers,
                produce_ts=produce_ts,
                producer_id=producer_id,
                producer_epoch=producer_epoch,
                base_sequence=base_sequence,
                acks=acks,
            ),
            replayable=producer_id is not None,
        )

    def fetch(self, topic, partition, offset, max_records=64, timeout=0.0, min_bytes=1):
        return self._partition_invoke(
            topic,
            partition,
            lambda r: r.fetch(
                topic,
                partition,
                offset,
                max_records=max_records,
                timeout=timeout,
                min_bytes=min_bytes,
            ),
        )

    def earliest_offset(self, topic, partition):
        return self._partition_invoke(
            topic, partition, lambda r: r.earliest_offset(topic, partition)
        )

    def latest_offset(self, topic, partition):
        return self._partition_invoke(
            topic, partition, lambda r: r.latest_offset(topic, partition)
        )

    def commit_offset(self, group, topic, partition, offset):
        self._group_invoke(
            group, lambda r: r.commit_offset(group, topic, partition, offset)
        )

    def committed_offset(self, group, topic, partition):
        return self._group_invoke(
            group, lambda r: r.committed_offset(group, topic, partition)
        )

    def committed_offsets(self, group):
        return self.coordinator.committed_offsets(group)

    def consumer_lag(self, group) -> dict:
        """Cluster-wide lag: committed offsets from the group's
        coordinator shard merged with every shard's partition depths
        (no single shard sees both sides for foreign partitions)."""
        committed = self.committed_offsets(group)
        topics = self.coordinator.group_topics(group)
        depths = self.partition_depths()
        partitions = set(committed)
        for tp in depths:
            if tp[0] in topics:
                partitions.add(tp)
        lag: dict[tuple, int] = {}
        for tp in partitions:
            depth = depths.get(tp)
            if depth is None:
                continue
            base = committed.get(tp)
            if base is None:
                base = depth["end_offset"] - depth["depth"]
            lag[tp] = max(0, depth["end_offset"] - base)
        return lag

    def partition_depths(self) -> dict:
        """Union of every responsive shard's owned-partition depths."""
        out: dict[tuple, dict] = {}
        for remote in self._live_remotes():
            try:
                out.update(remote.partition_depths())
            except (BrokerError, ConnectionError, OSError):
                continue
        return out

    # -- telemetry ------------------------------------------------------------

    @property
    def requests_in_flight(self) -> int:
        with self._remotes_lock:
            remotes = list(self._remotes.values())
        return sum(r.requests_in_flight for r in remotes)

    @property
    def requests_sent(self) -> int:
        with self._remotes_lock:
            remotes = list(self._remotes.values())
        return sum(r.requests_sent for r in remotes)

    def replication_status(self) -> dict:
        """Union of every responsive shard's led-partition ISR state."""
        out: dict = {"replication_factor": 1, "partitions": []}
        for remote in self._live_remotes():
            try:
                status = remote.replication_status()
            except (BrokerError, ConnectionError, OSError):
                continue
            out["replication_factor"] = max(
                out["replication_factor"], status.get("replication_factor", 1)
            )
            out["partitions"].extend(status.get("partitions", ()))
        return out

    def shard_metrics(self) -> dict:
        """``{shard_index: server_metrics}`` for every responsive shard;
        dead shards are simply absent (the sampler counts them)."""
        out: dict[int, dict] = {}
        for index, addr in enumerate(self._meta.shards):
            try:
                out[index] = self._remote(addr).server_metrics()
            except (BrokerError, ConnectionError, OSError):
                continue
        return out

    # -- observability plane ---------------------------------------------------

    def metrics_snapshots(self) -> dict:
        """``{shard_index: metrics_snapshot | None}`` across the cluster.

        Unreachable shards map to ``None`` (not absent) so the
        aggregator can tell "shard down" from "shard never existed".
        """
        out: dict[int, dict | None] = {}
        for index, addr in enumerate(self._meta.shards):
            try:
                out[index] = self._remote(addr).metrics_snapshot()
            except (BrokerError, ConnectionError, OSError):
                out[index] = None
        return out

    def shard_events(self, index: int, since: int = 0) -> dict | None:
        """One shard's ``events_since`` payload (``None`` if unreachable)."""
        shards = self._meta.shards
        if not 0 <= index < len(shards):
            return None
        try:
            return self._remote(shards[index]).events_since(since)
        except (BrokerError, ConnectionError, OSError):
            return None

    def events_snapshots(self, cursors: dict | None = None) -> dict:
        """``{shard_index: events_since payload | None}`` for the whole
        cluster, each shard drained past its cursor in *cursors*."""
        cursors = cursors or {}
        out: dict[int, dict | None] = {}
        for index, addr in enumerate(self._meta.shards):
            try:
                out[index] = self._remote(addr).events_since(
                    int(cursors.get(index, 0))
                )
            except (BrokerError, ConnectionError, OSError):
                out[index] = None
        return out

    def shard_spans(self, index: int, since: int = 0) -> dict | None:
        """One shard's ``trace_spans`` payload (``None`` if unreachable)."""
        shards = self._meta.shards
        if not 0 <= index < len(shards):
            return None
        try:
            return self._remote(shards[index]).trace_spans(since)
        except (BrokerError, ConnectionError, OSError):
            return None

    def span_snapshots(self, cursors: dict | None = None) -> dict:
        """``{shard_index: trace_spans payload | None}`` across the cluster."""
        cursors = cursors or {}
        out: dict[int, dict | None] = {}
        for index, addr in enumerate(self._meta.shards):
            try:
                out[index] = self._remote(addr).trace_spans(
                    int(cursors.get(index, 0))
                )
            except (BrokerError, ConnectionError, OSError):
                out[index] = None
        return out

    def stats(self) -> dict:
        """Per-shard stats merged: counters summed, topics unioned."""
        merged: dict = {
            "broker": self.name,
            "epoch": self._meta.epoch,
            "shards": {},
            "topics": {},
            "duplicates_dropped": 0,
            "long_polls_parked": 0,
            "members_evicted": 0,
        }
        for index, addr in enumerate(self._meta.shards):
            try:
                stats = self._remote(addr).stats()
            except (BrokerError, ConnectionError, OSError):
                continue
            merged["shards"][index] = stats.get("broker")
            for key in ("duplicates_dropped", "long_polls_parked", "members_evicted"):
                merged[key] += stats.get(key, 0)
            for name, topic in stats.get("topics", {}).items():
                agg = merged["topics"].setdefault(
                    name,
                    {
                        "partitions": topic["partitions"],
                        "records_in": 0,
                        "bytes_in": 0,
                        "bytes_retained": 0,
                        "duplicates_dropped": 0,
                        "long_polls_parked": 0,
                    },
                )
                for key in (
                    "records_in",
                    "bytes_in",
                    "bytes_retained",
                    "duplicates_dropped",
                    "long_polls_parked",
                ):
                    agg[key] += topic.get(key, 0)
        return merged

    def __repr__(self) -> str:
        meta = self._meta
        shards = meta.num_shards if meta is not None else 0
        return f"ClusterBroker({self.name!r}, shards={shards})"


# -- bootstrap ---------------------------------------------------------------


def connect_bootstrap(addresses, **kwargs):
    """Connect to whatever is listening at *addresses*.

    Tries each address in order, skipping ones that are down (the
    fall-through producers/consumers use for their ``bootstrap=`` lists).
    If the responder speaks ``describe_cluster`` the result is a
    :class:`ClusterBroker` over the full shard map; a plain single
    broker (which answers ``unknown op``) yields an ordinary
    :class:`RemoteBroker` — old deployments keep working with the same
    entry point. *kwargs* are forwarded to the client constructor.
    """
    addresses = [(str(h), int(p)) for h, p in addresses]
    if not addresses:
        raise ValidationError("bootstrap needs at least one (host, port) address")
    last_exc: Exception | None = None
    for host, port in addresses:
        try:
            probe = RemoteBroker(host, port, **kwargs)
        except (ConnectionError, OSError) as exc:
            last_exc = exc
            continue
        try:
            described = probe.describe_cluster()
        except RemoteBrokerError as exc:
            if exc.error_name == "ValidationError":
                # A plain broker: no cluster ops, use it directly.
                return probe
            probe.close()
            last_exc = exc
            continue
        except (DisconnectedError, BrokerTimeoutError, ConnectionError, OSError) as exc:
            probe.close()
            last_exc = exc
            continue
        probe.close()
        return ClusterBroker(
            addresses,
            metadata=ClusterMetadata.from_wire(described),
            **kwargs,
        )
    raise DisconnectedError(
        f"no broker reachable at any of {addresses}: {last_exc}"
    ) from last_exc
