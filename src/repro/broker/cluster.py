"""Multi-core broker: sharded partition ownership across processes.

Python's GIL means one broker process time-slices one core no matter how
deep the fast path gets. This module escapes it the way Kafka scales a
cluster — by *ownership*, not by locking: partitions are hashed across N
worker **processes** (each running its own
:class:`~repro.broker.reactor.ReactorBrokerServer` event loop on its own
port), every ``(topic, partition)`` pair has exactly one owner, and
clients route per partition. Three pieces:

- :class:`ShardBroker` — a :class:`~repro.broker.broker.Broker` that
  knows which slice of the partition space it owns and answers
  :class:`~repro.broker.errors.NotOwnerError` for the rest *before*
  touching any state, so a rejected op is always safe to retry against
  the true owner. Group coordination is ownership-guarded the same way:
  each group id hashes to one *coordinator shard* that holds the group's
  members, generations, and committed offsets.
- :class:`ClusterBrokerSupervisor` — spawns the worker processes, hands
  each the cluster address map + epoch over a control pipe, respawns
  dead shards on their original port (bumping the epoch), and tears the
  whole thing down deterministically.
- :class:`ClusterBroker` — the cluster-aware client: bootstraps metadata
  from any shard (``describe_cluster``), keeps one pipelined
  :class:`~repro.broker.remote.RemoteBroker` per shard, routes every
  partition-affine op to its owner and every group-affine op to its
  coordinator, and on ``NotOwnerError`` or connection loss refreshes
  metadata with capped backoff — replaying only idempotent ops, exactly
  the rules the single-connection client already follows.

Ownership is a *rule* (:mod:`repro.broker.metadata`), so the metadata
payload is O(shards) and newly created topics need no epoch bump. With
``num_shards=1`` everything degenerates to today's single-process
behavior, which is also how old single-broker clients stay compatible:
a plain :class:`RemoteBroker` pointed at one shard works unchanged.

This is ROADMAP item 1's skeleton: a partition→process map is a
partition→broker map in miniature, and ``NotOwnerError`` is
``NotLeaderError`` without replication.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from multiprocessing.connection import wait as connection_wait

from repro.broker.broker import Broker
from repro.broker.errors import (
    BrokerError,
    BrokerTimeoutError,
    DisconnectedError,
    NotOwnerError,
)
from repro.broker.group import GroupCoordinator
from repro.broker.metadata import (
    ClusterMetadata,
    coordinator_shard,
    shard_for_partition,
)
from repro.broker.reactor import ReactorBrokerServer
from repro.broker.remote import (
    RemoteBroker,
    RemoteBrokerError,
    RemoteRetriableError,
)
from repro.util.validation import ValidationError


# -- the shard-side broker ---------------------------------------------------


class ShardBroker(Broker):
    """A broker that owns a deterministic slice of the partition space.

    Partition-affine ops (``append``/``append_many``/``fetch``/offsets/
    ``partition_log`` — the last one covers the reactor's long-poll
    parking path) check ownership *first* and raise
    :class:`NotOwnerError` before any state is read or written; group-
    affine ops (coordination, commits) check the group's coordinator
    shard the same way via the coordinator's guard hook. Topics are
    created on every shard with their full partition set — unowned
    partition logs simply stay empty — so rebalance computations and
    partition counts need no cross-shard calls.

    Idempotent-producer ids are strided (``shard + k * num_shards``) so
    producers registered on different shards can never collide; with one
    shard this reduces to the plain broker's dense numbering.
    """

    def __init__(
        self,
        shard_index: int = 0,
        num_shards: int = 1,
        name: str | None = None,
        auto_create_topics: bool = False,
        tracer=None,
    ) -> None:
        if not 0 <= shard_index < num_shards:
            raise ValidationError(
                f"shard_index {shard_index} out of range for {num_shards} shards"
            )
        super().__init__(
            name=name or f"shard-{shard_index}",
            auto_create_topics=auto_create_topics,
            tracer=tracer,
        )
        self.shard_index = int(shard_index)
        self.num_shards = int(num_shards)
        self._cluster_meta = ClusterMetadata(epoch=0, shards=())
        self._server = None
        # Replace the base coordinator with one whose every group-scoped
        # entry point re-checks coordinator ownership.
        self._coordinator = GroupCoordinator(self, guard=self._check_group_owner)

    # -- cluster wiring ------------------------------------------------------

    def set_cluster(self, addresses, epoch: int) -> None:
        """Install the shard address map (called by the supervisor)."""
        meta = ClusterMetadata(
            epoch=int(epoch), shards=tuple((str(h), int(p)) for h, p in addresses)
        )
        if meta.num_shards != self.num_shards:
            raise ValidationError(
                f"cluster map has {meta.num_shards} shards, broker expects "
                f"{self.num_shards}"
            )
        self._cluster_meta = meta

    def attach_server(self, server) -> None:
        """Both broker servers call this on start(); keeps a handle so
        the reactor's gauges can be served over the wire."""
        self._server = server

    @property
    def cluster_epoch(self) -> int:
        return self._cluster_meta.epoch

    # -- ownership guards ----------------------------------------------------

    def owns(self, topic: str, partition: int) -> bool:
        return (
            shard_for_partition(topic, partition, self.num_shards)
            == self.shard_index
        )

    def _check_owner(self, topic: str, partition: int) -> None:
        owner = shard_for_partition(topic, partition, self.num_shards)
        if owner != self.shard_index:
            raise NotOwnerError(
                f"partition {topic}/{partition}",
                owner,
                self.shard_index,
                self._cluster_meta.epoch,
            )

    def _check_group_owner(self, group: str) -> None:
        owner = coordinator_shard(group, self.num_shards)
        if owner != self.shard_index:
            raise NotOwnerError(
                f"group {group!r}", owner, self.shard_index, self._cluster_meta.epoch
            )

    # -- partition-affine surface --------------------------------------------

    def append(self, topic, partition, value, **kwargs):
        self._check_owner(topic, partition)
        return super().append(topic, partition, value, **kwargs)

    def append_many(self, topic, partition, values, **kwargs):
        self._check_owner(topic, partition)
        return super().append_many(topic, partition, values, **kwargs)

    def fetch(self, topic, partition, offset, **kwargs):
        self._check_owner(topic, partition)
        return super().fetch(topic, partition, offset, **kwargs)

    def partition_log(self, topic, partition):
        # The reactor's long-poll parking goes through here, so a parked
        # fetch for a foreign partition is rejected up front too.
        self._check_owner(topic, partition)
        return super().partition_log(topic, partition)

    def earliest_offset(self, topic, partition):
        self._check_owner(topic, partition)
        return super().earliest_offset(topic, partition)

    def latest_offset(self, topic, partition):
        self._check_owner(topic, partition)
        return super().latest_offset(topic, partition)

    def partition_depths(self) -> dict:
        """Only the partitions this shard owns (unowned logs are empty
        placeholders); a cluster-wide view is the union over shards."""
        return {
            tp: d for tp, d in super().partition_depths().items() if self.owns(*tp)
        }

    # -- group-affine surface ------------------------------------------------

    def commit_offset(self, group, topic, partition, offset) -> None:
        # Commits are group-affine (Kafka's __consumer_offsets rule): the
        # coordinator shard owns a group's offsets even for partitions
        # whose *data* lives elsewhere.
        self._check_group_owner(group)
        super().commit_offset(group, topic, partition, offset)

    def committed_offset(self, group, topic, partition):
        self._check_group_owner(group)
        return super().committed_offset(group, topic, partition)

    def committed_offsets(self, group=None) -> dict:
        if group is not None:
            self._check_group_owner(group)
        return super().committed_offsets(group)

    def consumer_lag(self, group) -> dict:
        """Lag for the partitions this shard owns; the cluster client
        merges committed offsets with cluster-wide depths for the rest."""
        self._check_group_owner(group)
        return {tp: lag for tp, lag in super().consumer_lag(group).items() if self.owns(*tp)}

    # -- idempotent producers ------------------------------------------------

    def register_producer(self, client_id: str) -> tuple[int, int]:
        with self._producers_lock:
            pid = self._producer_ids.get(client_id)
            if pid is None:
                # Strided ids: globally unique without coordination.
                pid = self.shard_index + self.num_shards * len(self._producer_ids)
                self._producer_ids[client_id] = pid
                self._producer_epochs[pid] = 0
            else:
                self._producer_epochs[pid] += 1
            return pid, self._producer_epochs[pid]

    # -- cluster wire ops ----------------------------------------------------

    def describe_cluster(self) -> dict:
        meta = self._cluster_meta
        if meta.num_shards == 0:
            raise ValidationError("cluster metadata not initialised on this shard")
        out = meta.to_wire()
        out["shard"] = self.shard_index
        return out

    def find_coordinator(self, group: str) -> dict:
        meta = self._cluster_meta
        idx = coordinator_shard(group, self.num_shards)
        host, port = meta.shards[idx] if idx < meta.num_shards else (None, None)
        return {"shard": idx, "host": host, "port": port, "epoch": meta.epoch}

    def server_metrics(self) -> dict:
        out = {
            "shard": self.shard_index,
            "num_shards": self.num_shards,
            "epoch": self._cluster_meta.epoch,
        }
        if self._server is not None:
            out.update(self._server.metrics())
        return out


# -- the worker process ------------------------------------------------------


def _shard_worker_main(
    index: int,
    num_shards: int,
    host: str,
    port: int,
    topics,
    control_conn,
    opts: dict,
) -> None:
    """Entry point of one shard process (module-level: picklable).

    Two-phase startup: bind (ephemeral or respawn-pinned port), report
    the bound address on *control_conn*, then block for the full cluster
    map on the same pipe before serving — so no shard ever answers
    ``describe_cluster`` with a partial address list. Afterwards the
    control pipe carries epoch bumps and the stop signal; EOF (parent
    gone) also stops, so an orphaned worker exits instead of lingering.

    All parent<->worker traffic rides the per-worker pipe on purpose: a
    shared multiprocessing.Queue dies with its writers — a SIGKILLed
    shard can take the queue's shared write-lock to the grave, wedging
    every later sender — while a killed worker can only ever corrupt its
    *own* pipe, and its respawn gets a fresh one.
    """
    broker = ShardBroker(shard_index=index, num_shards=num_shards)
    for name, partitions in topics:
        broker.create_topic(name, num_partitions=partitions, exist_ok=True)
    deadline = time.monotonic() + opts.get("bind_timeout", 5.0)
    while True:
        try:
            server = ReactorBrokerServer(
                broker,
                host=host,
                port=port,
                num_workers=opts.get("num_workers", 4),
            )
            break
        except OSError as exc:
            # A respawn can race the dying process's port; retry briefly.
            if time.monotonic() >= deadline:
                control_conn.send(("error", index, f"bind failed: {exc}"))
                return
            time.sleep(0.05)
    control_conn.send(("bound", index, server.host, server.port))
    try:
        msg = control_conn.recv()
    except (EOFError, OSError):
        return
    if msg[0] != "cluster":
        return
    broker.set_cluster(msg[1], msg[2])
    server.start()
    try:
        while True:
            try:
                msg = control_conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] in ("cluster", "epoch"):
                broker.set_cluster(msg[1], msg[2])
            elif msg[0] == "stop":
                break
    finally:
        # Drains parked long-polls (clients see EOF, not a hang) and
        # joins the reactor + worker threads before the process exits.
        server.stop()
        try:
            control_conn.close()
        except OSError:
            pass


class ClusterBrokerSupervisor:
    """Spawns and supervises N shard processes on one host.

    Startup is two-phase: every worker binds and reports its address,
    then the supervisor broadcasts the complete map (epoch 1) and the
    workers begin serving. With ``restart=True`` a monitor thread
    respawns any shard that dies on its *original* port and broadcasts a
    bumped epoch — in-memory log/group state on the dead shard is lost
    (replication is ROADMAP item 1), but clients reconnect and resume.

    ``stop()`` signals every worker over its control pipe (each worker's
    ``server.stop()`` drains parked long-polls and joins its threads),
    joins every process, and escalates terminate → kill for stragglers,
    so no orphaned processes or sockets survive it.
    """

    def __init__(
        self,
        num_shards: int = 2,
        host: str = "127.0.0.1",
        topics=None,
        restart: bool = False,
        num_workers: int = 4,
        start_timeout: float = 30.0,
    ) -> None:
        if num_shards < 1:
            raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self.host = host
        self.topics = [(str(n), int(p)) for n, p in (topics or [])]
        self.restart = bool(restart)
        self.num_workers = int(num_workers)
        self.start_timeout = float(start_timeout)
        self.epoch = 0
        #: Shards respawned by the monitor thread (chaos accounting).
        self.restarts = 0
        self._ctx = multiprocessing.get_context()
        self._procs: list = [None] * self.num_shards
        self._pipes: list = [None] * self.num_shards
        self._addresses: list = [None] * self.num_shards
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, index: int, port: int):
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                index,
                self.num_shards,
                self.host,
                port,
                self.topics,
                child_conn,
                {"num_workers": self.num_workers},
            ),
            name=f"broker-shard-{index}",
            daemon=True,  # orphan safety net: workers die with the parent
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _await_bound(self, expect: set, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while expect:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"shards {sorted(expect)} did not bind within {timeout:.0f}s"
                )
            pipes = {self._pipes[index]: index for index in expect}
            for pipe in connection_wait(list(pipes), timeout=remaining):
                index = pipes[pipe]
                try:
                    msg = pipe.recv()
                except (EOFError, OSError):
                    raise RuntimeError(
                        f"shard {index} exited before binding"
                    ) from None
                if msg[0] == "error":
                    raise RuntimeError(
                        f"shard {msg[1]} failed to start: {msg[2]}"
                    )
                _, _, host, port = msg
                self._addresses[index] = (host, port)
                expect.discard(index)

    def _broadcast(self, tag: str) -> None:
        payload = (tag, list(self._addresses), self.epoch)
        for pipe in self._pipes:
            if pipe is None:
                continue
            try:
                pipe.send(payload)
            except (BrokenPipeError, OSError):
                pass  # dead shard; the monitor (if any) will respawn it

    def start(self) -> "ClusterBrokerSupervisor":
        if self._started:
            raise RuntimeError("supervisor already started")
        self._started = True
        self._stopping.clear()
        for index in range(self.num_shards):
            self._procs[index], self._pipes[index] = self._spawn(index, port=0)
        try:
            self._await_bound(set(range(self.num_shards)), self.start_timeout)
        except Exception:
            self._teardown()
            raise
        self.epoch = 1
        self._broadcast("cluster")
        if self.restart:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="cluster-monitor", daemon=True
            )
            self._monitor.start()
        return self

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(0.05):
            for index in range(self.num_shards):
                proc = self._procs[index]
                if proc is None or proc.is_alive() or self._stopping.is_set():
                    continue
                with self._lock:
                    if self._stopping.is_set():
                        return
                    proc.join(timeout=0)
                    old_pipe = self._pipes[index]
                    if old_pipe is not None:
                        try:
                            old_pipe.close()
                        except OSError:
                            pass
                    # Same port: clients that never noticed the crash
                    # keep a valid address; ones that did simply redial.
                    _, port = self._addresses[index]
                    self._procs[index], self._pipes[index] = self._spawn(index, port)
                    try:
                        self._await_bound({index}, self.start_timeout)
                    except RuntimeError:
                        continue  # next tick tries again
                    self.epoch += 1
                    self.restarts += 1
                    self._broadcast("cluster")

    def stop(self) -> None:
        if not self._started:
            return
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
            self._monitor = None
        with self._lock:
            self._teardown()
        self._started = False

    def _teardown(self) -> None:
        for pipe in self._pipes:
            if pipe is None:
                continue
            try:
                pipe.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 10.0
        for escalate in (None, "terminate", "kill"):
            for proc in self._procs:
                if proc is None or not proc.is_alive():
                    continue
                if escalate is not None:
                    getattr(proc, escalate)()
                proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for index, proc in enumerate(self._procs):
            if proc is not None:
                proc.join(timeout=1.0)
                self._procs[index] = None
        for index, pipe in enumerate(self._pipes):
            if pipe is not None:
                try:
                    pipe.close()
                except OSError:
                    pass
                self._pipes[index] = None

    def __enter__(self) -> "ClusterBrokerSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- introspection / chaos -----------------------------------------------

    @property
    def addresses(self) -> list:
        return [addr for addr in self._addresses if addr is not None]

    @property
    def bootstrap(self) -> list:
        """Alias clients pass straight to :class:`ClusterBroker`."""
        return self.addresses

    def describe_cluster(self) -> dict:
        return ClusterMetadata(self.epoch, tuple(self.addresses)).to_wire()

    def is_alive(self, index: int) -> bool:
        proc = self._procs[index]
        return proc is not None and proc.is_alive()

    def kill_shard(self, index: int) -> int:
        """SIGKILL one shard (chaos testing); returns the dead pid."""
        proc = self._procs[index]
        if proc is None or proc.pid is None:
            raise ValidationError(f"shard {index} is not running")
        pid = proc.pid
        os.kill(pid, signal.SIGKILL)
        proc.join(timeout=10)
        return pid


# -- the cluster-aware client ------------------------------------------------


class _ClusterCoordinator:
    """Routes each group's coordination to its coordinator shard."""

    def __init__(self, cluster: "ClusterBroker") -> None:
        self._cluster = cluster

    def join(self, group_id, member_id, topics, strategy=None, session_timeout_ms=None):
        if strategy is not None:
            raise ValidationError("remote coordinator uses the server's strategy")
        topics = list(topics)
        return self._cluster._group_invoke(
            group_id,
            lambda r: r.coordinator.join(
                group_id, member_id, topics, session_timeout_ms=session_timeout_ms
            ),
        )

    def leave(self, group_id, member_id):
        self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.leave(group_id, member_id)
        )

    def heartbeat(self, group_id, member_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.heartbeat(group_id, member_id)
        )

    def assignment(self, group_id, member_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.assignment(group_id, member_id)
        )

    def generation(self, group_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.generation(group_id)
        )

    def group_ids(self):
        """Union over every shard (each only knows the groups it hosts)."""
        ids: set[str] = set()
        for remote in self._cluster._live_remotes():
            try:
                ids.update(remote.coordinator.group_ids())
            except (BrokerError, ConnectionError, OSError):
                continue
        return sorted(ids)

    def members(self, group_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.members(group_id)
        )

    def group_topics(self, group_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.group_topics(group_id)
        )

    def committed_offsets(self, group_id):
        return self._cluster._group_invoke(
            group_id, lambda r: r.coordinator.committed_offsets(group_id)
        )


class ClusterBroker:
    """Cluster-aware client: one pipelined connection per shard, ops
    routed by the same ownership rule the shards enforce.

    Presents the same broker surface as :class:`RemoteBroker`, so
    :class:`~repro.broker.producer.Producer` and
    :class:`~repro.broker.consumer.Consumer` work against it unchanged.
    On :class:`NotOwnerError` (always raised before the op applied —
    safe for every op) or connection loss (safe only for idempotent
    ops), the client refreshes metadata with capped exponential backoff
    and re-routes; the per-shard connections' correlation-id pipelining,
    deadlines, and replay rules are :class:`RemoteBroker`'s, reused
    unchanged.
    """

    def __init__(
        self,
        bootstrap,
        connect_timeout: float = 5.0,
        op_timeout: float = 10.0,
        max_attempts: int = 3,
        reconnect_backoff_ms: float = 50.0,
        max_in_flight_requests: int = 5,
        link=None,
        tracer=None,
        metadata: ClusterMetadata | None = None,
    ) -> None:
        bootstrap = [(str(h), int(p)) for h, p in bootstrap]
        if not bootstrap:
            raise ValidationError("bootstrap needs at least one (host, port) address")
        self._bootstrap = bootstrap
        self.connect_timeout = float(connect_timeout)
        self.op_timeout = float(op_timeout)
        self.max_attempts = max(1, int(max_attempts))
        self.reconnect_backoff_ms = float(reconnect_backoff_ms)
        self._max_backoff_s = 2.0
        self.link = link
        self._tracer = tracer
        self.max_in_flight_requests = int(max_in_flight_requests)
        self.name = f"cluster://{bootstrap[0][0]}:{bootstrap[0][1]}"
        self.coordinator = _ClusterCoordinator(self)
        #: Successful metadata refreshes (bootstrap + re-routes).
        self.metadata_refreshes = 0
        self._fault_injector = None
        self._remotes: dict[tuple, RemoteBroker] = {}
        self._remotes_lock = threading.Lock()
        self._closed = False
        self._meta: ClusterMetadata | None = metadata
        if self._meta is None:
            self.refresh_metadata()

    # -- metadata ------------------------------------------------------------

    @property
    def metadata(self) -> ClusterMetadata:
        return self._meta

    @property
    def num_shards(self) -> int:
        return self._meta.num_shards

    @property
    def epoch(self) -> int:
        return self._meta.epoch

    def describe_cluster(self) -> dict:
        return self._meta.to_wire()

    def find_coordinator(self, group: str) -> dict:
        meta = self._meta
        idx = meta.coordinator_index(group)
        host, port = meta.shards[idx]
        return {"shard": idx, "host": host, "port": port, "epoch": meta.epoch}

    def refresh_metadata(self) -> ClusterMetadata:
        """Re-fetch the shard map from any responsive shard.

        Walks current shards first, then the bootstrap list; accepts only
        maps at least as new as the one held (epochs never go backwards).
        When nobody answers, the stale map is kept — the bounded retry
        loops above this decide when to give up.
        """
        candidates: list[tuple] = []
        meta = self._meta
        if meta is not None:
            candidates.extend(meta.shards)
        for addr in self._bootstrap:
            if addr not in candidates:
                candidates.append(addr)
        last_exc: Exception | None = None
        for addr in candidates:
            try:
                fresh = ClusterMetadata.from_wire(
                    self._remote(addr).describe_cluster()
                )
            except (BrokerError, ConnectionError, OSError) as exc:
                last_exc = exc
                continue
            if meta is None or fresh.epoch >= meta.epoch:
                self._meta = fresh
                self.metadata_refreshes += 1
                return fresh
        if meta is not None:
            return meta
        raise DisconnectedError(
            f"could not bootstrap cluster metadata from {candidates}: {last_exc}"
        ) from last_exc

    # -- connections ---------------------------------------------------------

    def _remote(self, address: tuple) -> RemoteBroker:
        with self._remotes_lock:
            if self._closed:
                raise DisconnectedError(f"{self.name} is closed")
            remote = self._remotes.get(address)
        if remote is not None:
            return remote
        host, port = address
        remote = RemoteBroker(
            host,
            port,
            connect_timeout=self.connect_timeout,
            op_timeout=self.op_timeout,
            max_attempts=self.max_attempts,
            reconnect_backoff_ms=self.reconnect_backoff_ms,
            max_in_flight_requests=self.max_in_flight_requests,
            link=self.link,
            tracer=self._tracer,
        )
        remote.fault_injector = self._fault_injector
        with self._remotes_lock:
            if self._closed:
                remote.close()
                raise DisconnectedError(f"{self.name} is closed")
            existing = self._remotes.setdefault(address, remote)
        if existing is not remote:
            remote.close()
        return existing

    def _live_remotes(self):
        """Connected shard handles, skipping addresses that refuse."""
        for addr in self._meta.shards:
            try:
                yield self._remote(addr)
            except (ConnectionError, OSError):
                continue

    @property
    def fault_injector(self):
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(self, injector) -> None:
        self._fault_injector = injector
        with self._remotes_lock:
            remotes = list(self._remotes.values())
        for remote in remotes:
            remote.fault_injector = injector

    def close(self) -> None:
        with self._remotes_lock:
            self._closed = True
            remotes, self._remotes = list(self._remotes.values()), {}
        for remote in remotes:
            remote.close()

    def __enter__(self) -> "ClusterBroker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- routing core --------------------------------------------------------

    def _invoke(self, pick, fn, replayable: bool = True):
        """Route one op: pick a shard from the current map, run it, and
        on NotOwner / connection loss refresh metadata and re-route.

        A ``NotOwnerError`` is always retried (the shard rejected the op
        before applying it); transport failures are retried only for
        replayable ops — the same rule :class:`RemoteBroker` applies to
        its own reconnects.
        """
        last_exc: Exception | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                time.sleep(
                    min(
                        self.reconnect_backoff_ms / 1000.0 * (2 ** (attempt - 1)),
                        self._max_backoff_s,
                    )
                )
            try:
                remote = self._remote(pick(self._meta))
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                self.refresh_metadata()
                continue
            try:
                return fn(remote)
            except RemoteRetriableError as exc:
                if exc.error_name != "NotOwnerError":
                    raise
                last_exc = exc
                self.refresh_metadata()
                continue
            except (DisconnectedError, BrokerTimeoutError) as exc:
                last_exc = exc
                if not replayable:
                    raise
                self.refresh_metadata()
                continue
        if isinstance(last_exc, BrokerError):
            raise last_exc
        raise DisconnectedError(
            f"op failed after {self.max_attempts} routed attempts on "
            f"{self.name}: {last_exc}"
        ) from last_exc

    def _partition_invoke(self, topic, partition, fn, replayable: bool = True):
        return self._invoke(lambda m: m.owner(topic, partition), fn, replayable)

    def _group_invoke(self, group, fn):
        # Group ops (joins, heartbeats, commits) are all replayable:
        # joins/commits are idempotent upserts, heartbeats are reads.
        return self._invoke(lambda m: m.coordinator(group), fn)

    def _any_invoke(self, fn):
        """Run *fn* against any responsive shard (topic metadata, etc.)."""
        last_exc: Exception | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                time.sleep(
                    min(
                        self.reconnect_backoff_ms / 1000.0 * (2 ** (attempt - 1)),
                        self._max_backoff_s,
                    )
                )
            for addr in self._meta.shards:
                try:
                    return fn(self._remote(addr))
                except (
                    RemoteRetriableError,
                    DisconnectedError,
                    BrokerTimeoutError,
                    ConnectionError,
                    OSError,
                ) as exc:
                    last_exc = exc
                    continue
            self.refresh_metadata()
        raise DisconnectedError(
            f"no shard answered after {self.max_attempts} sweeps on "
            f"{self.name}: {last_exc}"
        ) from last_exc

    # -- broker surface used by Producer/Consumer -----------------------------

    def create_topic(self, name: str, num_partitions: int = 1, exist_ok: bool = False):
        """Create the topic on *every* shard (full partition set each —
        ownership is enforced per op, not per log)."""
        out = None
        for index, addr in enumerate(self._meta.shards):
            topic = self._remote(addr).create_topic(
                name,
                num_partitions=num_partitions,
                # Only the first shard honours the caller's exist_ok so a
                # duplicate create fails exactly once, like one broker.
                exist_ok=exist_ok if index == 0 else True,
            )
            out = out if out is not None else topic
        return out

    def topic(self, name: str):
        return self._any_invoke(lambda r: r.topic(name))

    def list_topics(self) -> list:
        return self._any_invoke(lambda r: r.list_topics())

    def register_producer(self, client_id: str) -> tuple[int, int]:
        # Producer registration is hashed like a group id so the same
        # client id always re-registers (and epoch-fences) on one shard.
        return self._invoke(
            lambda m: m.coordinator(client_id),
            lambda r: r.register_producer(client_id),
        )

    def append(
        self,
        topic,
        partition,
        value,
        key=None,
        headers=None,
        produce_ts=None,
        producer_id=None,
        producer_epoch=0,
        sequence=None,
    ):
        return self._partition_invoke(
            topic,
            partition,
            lambda r: r.append(
                topic,
                partition,
                value,
                key=key,
                headers=headers,
                produce_ts=produce_ts,
                producer_id=producer_id,
                producer_epoch=producer_epoch,
                sequence=sequence,
            ),
            replayable=producer_id is not None,
        )

    def append_many(
        self,
        topic,
        partition,
        values,
        keys=None,
        headers=None,
        produce_ts=None,
        producer_id=None,
        producer_epoch=0,
        base_sequence=None,
    ):
        values = list(values)
        return self._partition_invoke(
            topic,
            partition,
            lambda r: r.append_many(
                topic,
                partition,
                values,
                keys=keys,
                headers=headers,
                produce_ts=produce_ts,
                producer_id=producer_id,
                producer_epoch=producer_epoch,
                base_sequence=base_sequence,
            ),
            replayable=producer_id is not None,
        )

    def fetch(self, topic, partition, offset, max_records=64, timeout=0.0, min_bytes=1):
        return self._partition_invoke(
            topic,
            partition,
            lambda r: r.fetch(
                topic,
                partition,
                offset,
                max_records=max_records,
                timeout=timeout,
                min_bytes=min_bytes,
            ),
        )

    def earliest_offset(self, topic, partition):
        return self._partition_invoke(
            topic, partition, lambda r: r.earliest_offset(topic, partition)
        )

    def latest_offset(self, topic, partition):
        return self._partition_invoke(
            topic, partition, lambda r: r.latest_offset(topic, partition)
        )

    def commit_offset(self, group, topic, partition, offset):
        self._group_invoke(
            group, lambda r: r.commit_offset(group, topic, partition, offset)
        )

    def committed_offset(self, group, topic, partition):
        return self._group_invoke(
            group, lambda r: r.committed_offset(group, topic, partition)
        )

    def committed_offsets(self, group):
        return self.coordinator.committed_offsets(group)

    def consumer_lag(self, group) -> dict:
        """Cluster-wide lag: committed offsets from the group's
        coordinator shard merged with every shard's partition depths
        (no single shard sees both sides for foreign partitions)."""
        committed = self.committed_offsets(group)
        topics = self.coordinator.group_topics(group)
        depths = self.partition_depths()
        partitions = set(committed)
        for tp in depths:
            if tp[0] in topics:
                partitions.add(tp)
        lag: dict[tuple, int] = {}
        for tp in partitions:
            depth = depths.get(tp)
            if depth is None:
                continue
            base = committed.get(tp)
            if base is None:
                base = depth["end_offset"] - depth["depth"]
            lag[tp] = max(0, depth["end_offset"] - base)
        return lag

    def partition_depths(self) -> dict:
        """Union of every responsive shard's owned-partition depths."""
        out: dict[tuple, dict] = {}
        for remote in self._live_remotes():
            try:
                out.update(remote.partition_depths())
            except (BrokerError, ConnectionError, OSError):
                continue
        return out

    # -- telemetry ------------------------------------------------------------

    @property
    def requests_in_flight(self) -> int:
        with self._remotes_lock:
            remotes = list(self._remotes.values())
        return sum(r.requests_in_flight for r in remotes)

    @property
    def requests_sent(self) -> int:
        with self._remotes_lock:
            remotes = list(self._remotes.values())
        return sum(r.requests_sent for r in remotes)

    def shard_metrics(self) -> dict:
        """``{shard_index: server_metrics}`` for every responsive shard;
        dead shards are simply absent (the sampler counts them)."""
        out: dict[int, dict] = {}
        for index, addr in enumerate(self._meta.shards):
            try:
                out[index] = self._remote(addr).server_metrics()
            except (BrokerError, ConnectionError, OSError):
                continue
        return out

    def stats(self) -> dict:
        """Per-shard stats merged: counters summed, topics unioned."""
        merged: dict = {
            "broker": self.name,
            "epoch": self._meta.epoch,
            "shards": {},
            "topics": {},
            "duplicates_dropped": 0,
            "long_polls_parked": 0,
            "members_evicted": 0,
        }
        for index, addr in enumerate(self._meta.shards):
            try:
                stats = self._remote(addr).stats()
            except (BrokerError, ConnectionError, OSError):
                continue
            merged["shards"][index] = stats.get("broker")
            for key in ("duplicates_dropped", "long_polls_parked", "members_evicted"):
                merged[key] += stats.get(key, 0)
            for name, topic in stats.get("topics", {}).items():
                agg = merged["topics"].setdefault(
                    name,
                    {
                        "partitions": topic["partitions"],
                        "records_in": 0,
                        "bytes_in": 0,
                        "bytes_retained": 0,
                        "duplicates_dropped": 0,
                        "long_polls_parked": 0,
                    },
                )
                for key in (
                    "records_in",
                    "bytes_in",
                    "bytes_retained",
                    "duplicates_dropped",
                    "long_polls_parked",
                ):
                    agg[key] += topic.get(key, 0)
        return merged

    def __repr__(self) -> str:
        meta = self._meta
        shards = meta.num_shards if meta is not None else 0
        return f"ClusterBroker({self.name!r}, shards={shards})"


# -- bootstrap ---------------------------------------------------------------


def connect_bootstrap(addresses, **kwargs):
    """Connect to whatever is listening at *addresses*.

    Tries each address in order, skipping ones that are down (the
    fall-through producers/consumers use for their ``bootstrap=`` lists).
    If the responder speaks ``describe_cluster`` the result is a
    :class:`ClusterBroker` over the full shard map; a plain single
    broker (which answers ``unknown op``) yields an ordinary
    :class:`RemoteBroker` — old deployments keep working with the same
    entry point. *kwargs* are forwarded to the client constructor.
    """
    addresses = [(str(h), int(p)) for h, p in addresses]
    if not addresses:
        raise ValidationError("bootstrap needs at least one (host, port) address")
    last_exc: Exception | None = None
    for host, port in addresses:
        try:
            probe = RemoteBroker(host, port, **kwargs)
        except (ConnectionError, OSError) as exc:
            last_exc = exc
            continue
        try:
            described = probe.describe_cluster()
        except RemoteBrokerError as exc:
            if exc.error_name == "ValidationError":
                # A plain broker: no cluster ops, use it directly.
                return probe
            probe.close()
            last_exc = exc
            continue
        except (DisconnectedError, BrokerTimeoutError, ConnectionError, OSError) as exc:
            probe.close()
            last_exc = exc
            continue
        probe.close()
        return ClusterBroker(
            addresses,
            metadata=ClusterMetadata.from_wire(described),
            **kwargs,
        )
    raise DisconnectedError(
        f"no broker reachable at any of {addresses}: {last_exc}"
    ) from last_exc
