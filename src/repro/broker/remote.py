"""TCP transport for the broker: cross-process producers/consumers.

Everything else in this package runs in-process; this module puts the
broker behind a socket so pilots in *separate processes* (or separate
machines, in a real deployment) can share one broker — the shape of the
paper's actual Kafka deployment.

Protocol: length-prefixed JSON frames (4-byte big-endian length, then a
UTF-8 JSON object). A frame may additionally carry *binary blobs*: when
the JSON object has an ``"nblobs": k`` field, the frame is followed by
``k`` length-prefixed raw byte strings. The batched data-path ops
(``append_batch`` / ``fetch_batch``) move record payloads as blobs —
one socket round-trip per batch and no base64 (which inflates payloads
by ~33% and burns CPU on both ends). Small fields (keys, headers,
offsets) stay base64-in-JSON for debuggability; the legacy per-record
``append`` / ``fetch`` ops are still served for compatibility.

The protocol is *pipelined*: every request carries a correlation id
(``"cid"``) that the server echoes in the response, so one connection
can have many requests in flight and responses may return out of order
(a parked long-poll fetch does not block the appends queued behind it).
On high-RTT links this is the difference between one round-trip per
request and one round-trip per *window* of requests.

Server side: :class:`BrokerServer` is the ``selectors``-based reactor
from :mod:`repro.broker.reactor` — one event-loop thread multiplexing
every client socket, a small worker pool for op dispatch, and long-poll
fetches parked as loop state instead of side threads.
:class:`ThreadedBrokerServer` is the previous one-thread-per-connection
implementation, kept as the benchmark baseline the reactor is gated
against; both share the framing and op table in
:mod:`repro.broker.wire`, so they are wire-identical.

Client side: :class:`RemoteBroker` implements the same data-path surface
(`append`, `append_many`, `fetch`, offsets, commits, coordinator
operations), so the existing :class:`~repro.broker.producer.Producer`
and :class:`~repro.broker.consumer.Consumer` work against it unchanged
— including the batched `Producer.send_many` fast path. A dedicated
reader thread dispatches responses to per-request futures; concurrency
is bounded by ``max_in_flight_requests``, and non-idempotent ops cap
in-flight at 1 (Kafka-style) so a reconnect can never replay or reorder
them.
"""

from __future__ import annotations

import json
import socket
import threading
import time

from repro.broker.broker import Broker
from repro.broker.errors import (
    BrokerError,
    BrokerTimeoutError,
    DisconnectedError,
    FatalError,
    RetriableError,
    UnknownMemberError,
)
from repro.broker.message import BatchMetadata, Record, RecordMetadata
from repro.broker.reactor import ReactorBrokerServer
from repro.broker.wire import (
    LEN as _LEN,
    MAX_FRAME,
    b64 as _b64,
    execute_op,
    recv_frame as _recv_frame,
    send_frame as _send_frame,
    sendall_vectored as _sendall_vectored,
    unb64 as _unb64,
)
from repro.util.validation import ValidationError

#: The reactor is the default server; the threaded implementation below
#: remains as the baseline the connection-scale benchmark compares against.
BrokerServer = ReactorBrokerServer


class RemoteBrokerError(BrokerError):
    """A server-side error propagated over the wire."""

    def __init__(self, message: str, error_name: str = "") -> None:
        super().__init__(message)
        #: Exception class name raised on the server (error taxonomy key).
        self.error_name = error_name


class RemoteRetriableError(RemoteBrokerError, RetriableError):
    """A server-side *transient* error; the request may be retried."""


class RemoteFatalError(RemoteBrokerError, FatalError):
    """A server-side *permanent* error; retrying cannot succeed."""


#: Server-side exception names that map onto the retriable/fatal axes
#: client-side, so ``is_retriable`` keeps working across the wire.
_RETRIABLE_WIRE = {
    "RetriableError",
    "BrokerTimeoutError",
    "DisconnectedError",
    "UnknownMemberError",
    "RebalanceInProgressError",
    "NotOwnerError",
    "NotEnoughReplicasError",
    "ConnectionError",
    "TimeoutError",
}
_FATAL_WIRE = {
    "FatalError",
    "ProducerFencedError",
    "OutOfOrderSequenceError",
    "StaleLeaderEpochError",
}


def _raise_wire_error(name: str, message: str):
    text = f"{name}: {message}"
    if name in _RETRIABLE_WIRE:
        raise RemoteRetriableError(text, error_name=name)
    if name in _FATAL_WIRE:
        raise RemoteFatalError(text, error_name=name)
    raise RemoteBrokerError(text, error_name=name)


class ThreadedBrokerServer:
    """Serves an in-process broker over TCP (one thread per client).

    The pre-reactor server: an accept thread, one handler thread per
    connection, and one side thread per parked long-poll fetch. Kept as
    the baseline the connection-scale benchmark gates the reactor
    against; production code should use :class:`BrokerServer` (the
    reactor), which this class is wire-compatible with.
    """

    def __init__(
        self,
        broker: Broker | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        tracer=None,
    ) -> None:
        self.broker = broker if broker is not None else Broker()
        #: Optional :class:`repro.monitoring.Tracer`. When set, requests
        #: carrying the optional ``"trace"`` frame field get a
        #: ``server.<op>`` span (child of the client's RPC span). Frames
        #: without the field — i.e. from pre-tracing clients — dispatch
        #: exactly as before.
        self._tracer = tracer
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        # A blocked accept() is not reliably woken by close() from
        # another thread; poll with a short timeout instead.
        self._listener.settimeout(0.1)
        self.host, self.port = self._listener.getsockname()
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self.connections_served = 0
        self.requests_served = 0
        #: op name -> number of requests dispatched (batching telemetry).
        self.op_counts: dict[str, int] = {}
        self._counts_lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ThreadedBrokerServer":
        if self._accept_thread is not None:
            raise RuntimeError("server already started")
        # Shard brokers want a handle on their server (to serve
        # ``server_metrics`` over the wire); plain brokers have no hook.
        attach = getattr(self.broker, "attach_server", None)
        if attach is not None:
            attach(self)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"broker-server:{self.port}", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "ThreadedBrokerServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def address(self) -> tuple:
        return (self.host, self.port)

    def metrics(self) -> dict:
        """Connection-level gauges (subset of the reactor's surface)."""
        with self._counts_lock:
            return {
                "requests_served": self.requests_served,
                "connections_served": self.connections_served,
            }

    # -- serving --------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            conn.settimeout(None)
            self.connections_served += 1
            threading.Thread(
                target=self._serve_client, args=(conn,), daemon=True
            ).start()

    @staticmethod
    def _is_parkable(request: dict) -> bool:
        """Requests that may legitimately block server-side (long-polls).

        These are handed to a side thread so a parked fetch cannot
        head-of-line-block the pipelined requests queued behind it on the
        same connection — an append racing a long-poll on the *same*
        partition must get through, or neither would ever complete.
        """
        if request.get("op") not in ("fetch", "fetch_batch"):
            return False
        try:
            return float(request.get("timeout") or 0.0) > 0
        except (TypeError, ValueError):
            return False

    def _serve_client(self, conn: socket.socket) -> None:
        # Responses from the inline path and from parked long-poll side
        # threads interleave on one socket; the lock keeps frames whole.
        send_lock = threading.Lock()
        with conn:
            while not self._stop.is_set():
                try:
                    request, blobs = _recv_frame(conn)
                except (ConnectionError, OSError, json.JSONDecodeError):
                    return
                if self._is_parkable(request):
                    threading.Thread(
                        target=self._handle_request,
                        args=(conn, send_lock, request, blobs),
                        daemon=True,
                    ).start()
                elif not self._handle_request(conn, send_lock, request, blobs):
                    return

    def _handle_request(
        self, conn: socket.socket, send_lock: threading.Lock, request: dict, blobs
    ) -> bool:
        """Dispatch one request and send its response; False on dead socket."""
        cid = request.pop("cid", None)
        # Optional frame-level trace context (absent on old clients).
        trace_ctx = request.pop("trace", None)
        span = None
        if self._tracer is not None and trace_ctx is not None:
            span = self._tracer.start_span(
                f"server.{request.get('op')}",
                parent=trace_ctx,
                site=self.broker.name,
            )
        out_blobs: list = []
        try:
            result, out_blobs = self._dispatch(request, blobs)
            response = {"ok": True, "result": result}
        except Exception as exc:  # noqa: BLE001 — all errors go to the client
            out_blobs = []
            if span is not None:
                span.set_attr("error", type(exc).__name__)
            response = {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        if span is not None:
            span.finish()
        if cid is not None:
            response["cid"] = cid
        with self._counts_lock:
            self.requests_served += 1
        try:
            with send_lock:
                _send_frame(conn, response, out_blobs)
        except OSError:
            return False
        return True

    def _dispatch(self, request: dict, blobs: list[bytes]):
        op = request.get("op")
        with self._counts_lock:
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
        return execute_op(self.broker, request, blobs)


class _RemoteCoordinator:
    """Client-side face of the group coordinator."""

    def __init__(self, remote: "RemoteBroker") -> None:
        self._remote = remote

    def join(self, group_id, member_id, topics, strategy=None, session_timeout_ms=None):
        if strategy is not None:
            raise ValidationError("remote coordinator uses the server's strategy")
        return self._remote._call(
            "group_join",
            group=group_id,
            member=member_id,
            topics=list(topics),
            session_timeout_ms=session_timeout_ms,
        )

    def leave(self, group_id, member_id):
        self._remote._call("group_leave", group=group_id, member=member_id)

    def heartbeat(self, group_id, member_id):
        try:
            return self._remote._call("group_heartbeat", group=group_id, member=member_id)
        except RemoteBrokerError as exc:
            if exc.error_name == "UnknownMemberError":
                # Re-raise as the typed error so Consumer's rejoin logic
                # works identically against remote and in-proc brokers.
                raise UnknownMemberError(group_id, member_id) from exc
            raise

    def assignment(self, group_id, member_id):
        out = self._remote._call("group_assignment", group=group_id, member=member_id)
        return out["generation"], [tuple(tp) for tp in out["assignment"]]

    def generation(self, group_id):
        return self._remote._call("group_generation", group=group_id)

    def group_ids(self):
        return self._remote._call("group_ids")

    def members(self, group_id):
        return self._remote._call("group_members", group=group_id)

    def committed_offsets(self, group_id):
        return {
            (t, p): off
            for t, p, off in self._remote._call("committed_offsets", group=group_id)
        }

    def group_topics(self, group_id):
        return set(self._remote._call("group_topics", group=group_id))


class _RemoteTopic:
    def __init__(self, name: str, num_partitions: int) -> None:
        self.name = name
        self.num_partitions = num_partitions

    @property
    def partitions(self) -> tuple:
        return tuple(range(self.num_partitions))


class _Pending:
    """A per-request future the reader thread completes."""

    __slots__ = ("event", "response", "blobs", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: dict | None = None
        self.blobs: list[bytes] = []
        self.error: Exception | None = None


class _Connection:
    """One pipelined socket: a writer lock, a reader thread, and the
    correlation-id -> pending-future table the reader dispatches into.

    Responses for abandoned correlation ids (a caller that gave up on its
    deadline and reconnected) are silently dropped — the id space is
    per-connection, so a stale response can never complete a newer
    request.
    """

    def __init__(self, sock: socket.socket, name: str) -> None:
        self.sock = sock
        self.send_lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._plock = threading.Lock()
        self.dead = False
        self.reader = threading.Thread(
            target=self._read_loop, name=f"{name}-reader", daemon=True
        )
        self.reader.start()

    def register(self, cid: int) -> _Pending:
        pend = _Pending()
        with self._plock:
            if self.dead:
                raise ConnectionError("connection is dead")
            self._pending[cid] = pend
        return pend

    def discard(self, cid: int) -> None:
        with self._plock:
            self._pending.pop(cid, None)

    def _read_loop(self) -> None:
        while True:
            try:
                response, blobs = _recv_frame(self.sock)
            except (ConnectionError, OSError, json.JSONDecodeError) as exc:
                self.fail_all(exc)
                return
            cid = response.pop("cid", None)
            with self._plock:
                pend = self._pending.pop(cid, None)
            if pend is not None:
                pend.response = response
                pend.blobs = blobs
                pend.event.set()

    def fail_all(self, exc: Exception) -> None:
        """Mark the connection dead and wake every in-flight waiter."""
        with self._plock:
            self.dead = True
            pending = list(self._pending.values())
            self._pending.clear()
        for pend in pending:
            pend.error = exc
            pend.event.set()

    def close(self) -> None:
        # shutdown() before close(): closing alone does not wake a reader
        # thread blocked in recv(), which would leave RemoteBroker.close()
        # burning its full join timeout per connection.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _InFlightGate:
    """Bounds concurrent in-flight requests on one client connection.

    All ops share up to *limit* slots. Non-idempotent ops additionally
    serialize **among themselves** — at most one is ever in flight, the
    Kafka ``max.in.flight=1`` rule for non-idempotent producers, so a
    reconnect can never duplicate or reorder appends. They still
    pipeline alongside replayable reads: a fetch parked server-side
    must not block the append that would satisfy it (reads cannot
    violate produce ordering).
    """

    def __init__(self, limit: int) -> None:
        self._limit = max(1, int(limit))
        self._cond = threading.Condition()
        self._active = 0
        self._exclusive = False
        #: Peak concurrent in-flight requests observed (telemetry).
        self.max_in_flight_seen = 0

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def active(self) -> int:
        """Requests currently in flight (telemetry gauge)."""
        with self._cond:
            return self._active

    def acquire(self, exclusive: bool, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                admissible = self._active < self._limit and not (
                    exclusive and self._exclusive
                )
                if admissible:
                    self._active += 1
                    if exclusive:
                        self._exclusive = True
                    if self._active > self.max_in_flight_seen:
                        self.max_in_flight_seen = self._active
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)

    def release(self, exclusive: bool) -> None:
        with self._cond:
            self._active -= 1
            if exclusive:
                self._exclusive = False
            self._cond.notify_all()


class RemoteBroker:
    """Client handle exposing the broker data-path API over TCP.

    Thread safety: the connection is *pipelined* — any number of threads
    may issue requests concurrently; up to ``max_in_flight_requests``
    travel on the wire at once and a dedicated reader thread routes each
    response to its caller by correlation id. Non-idempotent ops (plain
    appends without a producer id) serialize at in-flight = 1 so a
    reconnect can never replay or reorder them.
    """

    #: Ops whose effect is safe to replay on a fresh connection. Append
    #: ops join the list only when they carry idempotent-producer fields
    #: (the broker's dedup window then absorbs the replay).
    _NON_IDEMPOTENT_OPS = frozenset({"append", "append_batch"})

    #: Extra headroom on top of a long-poll's server-side wait before the
    #: client declares the server dead — covers scheduling jitter and the
    #: response's return trip so a parked fetch is never misdiagnosed as
    #: a silent server.
    _LONG_POLL_SLACK_S = 0.5

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        op_timeout: float = 10.0,
        max_attempts: int = 3,
        reconnect_backoff_ms: float = 50.0,
        max_in_flight_requests: int = 5,
        link=None,
        tracer=None,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = float(connect_timeout)
        #: Per-request deadline; a blocking fetch extends it by its own
        #: server-side wait (plus slack), so a healthy-but-parked server
        #: is never mistaken for a dead one.
        self.op_timeout = float(op_timeout)
        self.max_attempts = max(1, int(max_attempts))
        self.reconnect_backoff_ms = float(reconnect_backoff_ms)
        self._max_backoff_s = 2.0
        self.name = f"remote://{host}:{port}"
        self.coordinator = _RemoteCoordinator(self)
        #: Requests written to the wire by this client.
        self.requests_sent = 0
        #: Transport failures that triggered a successful reconnect.
        self.reconnects = 0
        #: Optional FaultInjector consulted before every request (tests).
        self.fault_injector = None
        #: Optional netem Link; when set, every request pays the link's
        #: sampled RTT client-side *in the calling thread*, so pipelined
        #: requests overlap their delays the way real concurrent packets
        #: share a wire.
        self.link = link
        #: Optional :class:`repro.monitoring.Tracer`. When set, every RPC
        #: opens an ``rpc.<op>`` span whose context travels in the frame's
        #: optional ``"trace"`` field (ignored by pre-tracing servers).
        self._tracer = tracer
        self._gate = _InFlightGate(max_in_flight_requests)
        self._cid_lock = threading.Lock()
        self._next_cid = 0
        self._conn_lock = threading.Lock()
        self._conn: _Connection | None = None
        self._closed = False
        self._ensure_conn()

    @property
    def max_in_flight_requests(self) -> int:
        return self._gate.limit

    @property
    def max_in_flight_seen(self) -> int:
        """Peak concurrent in-flight requests observed (telemetry)."""
        return self._gate.max_in_flight_seen

    def _ensure_conn(self) -> _Connection:
        with self._conn_lock:
            if self._closed:
                raise DisconnectedError(f"{self.name} is closed")
            if self._conn is None or self._conn.dead:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                # Deadlines are enforced by per-request future waits, not
                # socket timeouts — the reader blocks indefinitely and is
                # woken by data or by close().
                sock.settimeout(None)
                self._conn = _Connection(sock, self.name)
            return self._conn

    def _drop_conn(self, conn: _Connection, exc: Exception) -> None:
        """Retire a connection after a transport failure.

        Every other in-flight caller on it is failed immediately (their
        requests may or may not have been applied — the same ambiguity a
        socket timeout has), and the next request dials fresh.
        """
        conn.fail_all(exc)
        conn.close()
        with self._conn_lock:
            if self._conn is conn:
                self._conn = None

    def close(self) -> None:
        with self._conn_lock:
            self._closed = True
            conn, self._conn = self._conn, None
        if conn is not None:
            conn.fail_all(DisconnectedError(f"{self.name} is closed"))
            conn.close()
            conn.reader.join(timeout=1.0)

    def __enter__(self) -> "RemoteBroker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, op: str, _blobs=(), **kwargs):
        result, _ = self._call_with_blobs(op, _blobs, **kwargs)
        return result

    def _deadline_for(self, op: str, kwargs: dict) -> float:
        # Blocking fetches legitimately park server-side for up to their
        # requested timeout; give them that long, plus slack for the
        # response's return trip, plus the op budget.
        wait = float(kwargs.get("timeout") or 0.0)
        slack = self._LONG_POLL_SLACK_S if wait > 0 else 0.0
        return self.op_timeout + wait + slack

    def _new_cid(self) -> int:
        with self._cid_lock:
            self._next_cid += 1
            return self._next_cid

    def _call_with_blobs(self, op: str, _blobs=(), **kwargs):
        if self._tracer is None:
            return self._invoke(op, _blobs, None, kwargs)
        span = self._tracer.start_trace(f"rpc.{op}", site=self.name)
        try:
            result = self._invoke(op, _blobs, span, kwargs)
        except Exception as exc:
            span.set_attr("error", type(exc).__name__)
            span.finish()
            raise
        span.finish()
        return result

    def _invoke(self, op: str, _blobs, span, kwargs):
        replayable = op not in self._NON_IDEMPOTENT_OPS or (
            kwargs.get("producer_id") is not None
        )
        deadline = self._deadline_for(op, kwargs)
        last_exc: Exception | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                # Capped backoff before re-dialing a flapping server.
                time.sleep(
                    min(
                        self.reconnect_backoff_ms / 1000.0 * (2 ** (attempt - 1)),
                        self._max_backoff_s,
                    )
                )
            if self._closed:
                raise DisconnectedError(f"{self.name} is closed")
            try:
                conn = self._ensure_conn()
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                continue
            # Non-replayable ops serialize among themselves (at most one
            # in flight) so a transport failure can never duplicate or
            # reorder appends; replayable reads pipeline freely.
            exclusive = not replayable
            if not self._gate.acquire(exclusive=exclusive, timeout=deadline):
                raise BrokerTimeoutError(
                    f"{op} waited {deadline:.1f}s for an in-flight slot on {self.name}"
                )
            try:
                cid = self._new_cid()
                try:
                    pend = conn.register(cid)
                    if self.link is not None:
                        self.link.rtt_delay()
                    if self.fault_injector is not None:
                        self.fault_injector.on_remote_op(op, conn.sock)
                    frame = {"op": op, "cid": cid, **kwargs}
                    if span is not None and span.recording:
                        frame["trace"] = span.context
                    with conn.send_lock:
                        self.requests_sent += 1
                        _send_frame(conn.sock, frame, _blobs)
                except (ConnectionError, OSError) as exc:
                    conn.discard(cid)
                    self._drop_conn(conn, exc)
                    last_exc = exc
                    if not replayable:
                        raise DisconnectedError(
                            f"{op} failed on {self.name}: {exc}"
                        ) from exc
                    continue
                if not pend.event.wait(deadline):
                    # The server accepted the request but went silent; the
                    # op may have been applied, so only replayable ops are
                    # retried on a fresh connection.
                    conn.discard(cid)
                    exc = socket.timeout(f"{op} deadline {deadline:.1f}s")
                    self._drop_conn(conn, exc)
                    last_exc = exc
                    if not replayable:
                        raise BrokerTimeoutError(
                            f"{op} timed out after {deadline:.1f}s on {self.name}"
                        )
                    continue
                if pend.error is not None:
                    # Reader saw the transport die mid-flight.
                    self._drop_conn(conn, pend.error)
                    last_exc = pend.error
                    if not replayable:
                        raise DisconnectedError(
                            f"{op} failed on {self.name}: {pend.error}"
                        ) from pend.error
                    continue
            finally:
                self._gate.release(exclusive)
            if attempt:
                self.reconnects += 1
            response = pend.response
            if response.get("ok"):
                return response.get("result"), pend.blobs
            _raise_wire_error(
                response.get("error", "Error"), response.get("message", "")
            )
        if isinstance(last_exc, socket.timeout):
            raise BrokerTimeoutError(
                f"{op} timed out after {self.max_attempts} attempts on {self.name}"
            ) from last_exc
        raise DisconnectedError(
            f"{op} failed after {self.max_attempts} attempts on {self.name}: {last_exc}"
        ) from last_exc

    # -- broker surface used by Producer/Consumer -----------------------------

    def create_topic(self, name: str, num_partitions: int = 1, exist_ok: bool = False):
        out = self._call(
            "create_topic", topic=name, num_partitions=num_partitions, exist_ok=exist_ok
        )
        return _RemoteTopic(name, out["partitions"])

    def topic(self, name: str) -> _RemoteTopic:
        return _RemoteTopic(name, self._call("num_partitions", topic=name))

    def list_topics(self) -> list:
        return self._call("list_topics")

    def register_producer(self, client_id: str) -> tuple[int, int]:
        out = self._call("register_producer", client_id=client_id)
        return out["producer_id"], out["epoch"]

    def append(
        self,
        topic,
        partition,
        value,
        key=None,
        headers=None,
        produce_ts=None,
        producer_id=None,
        producer_epoch=0,
        sequence=None,
        acks=None,
    ):
        kwargs = dict(
            topic=topic,
            partition=partition,
            value=_b64(value),
            key=_b64(key),
            headers=headers or {},
            produce_ts=produce_ts,
            producer_id=producer_id,
            producer_epoch=producer_epoch,
            sequence=sequence,
        )
        if acks is not None:
            # Only stamped when non-default, so frames to pre-replication
            # servers keep the exact old schema.
            kwargs["acks"] = acks
        out = self._call("append", **kwargs)
        return RecordMetadata(topic=topic, partition=partition, offset=out["offset"])

    def append_many(
        self,
        topic,
        partition,
        values,
        keys=None,
        headers=None,
        produce_ts=None,
        producer_id=None,
        producer_epoch=0,
        base_sequence=None,
        acks=None,
    ):
        """Batched append: one socket round-trip, values as binary blobs."""
        values = list(values)
        kwargs = dict(
            topic=topic,
            partition=partition,
            keys=None if keys is None else [_b64(k) for k in keys],
            headers=headers,
            produce_ts=produce_ts,
            producer_id=producer_id,
            producer_epoch=producer_epoch,
            base_sequence=base_sequence,
        )
        if acks is not None:
            kwargs["acks"] = acks
        out = self._call("append_batch", _blobs=values, **kwargs)
        return BatchMetadata(
            topic=topic,
            partition=partition,
            base_offset=out["base_offset"],
            count=out["count"],
        )

    def fetch(self, topic, partition, offset, max_records=64, timeout=0.0, min_bytes=1):
        """Fetch records; values travel as binary blobs (``fetch_batch``).

        With ``timeout > 0`` the server long-polls: it parks on the
        partition until at least *min_bytes* of payload (or a full batch)
        is available rather than returning empty for the client to
        re-poll over the WAN.
        """
        meta, blobs = self._call_with_blobs(
            "fetch_batch",
            topic=topic,
            partition=partition,
            offset=offset,
            max_records=max_records,
            timeout=timeout,
            min_bytes=min_bytes,
        )
        return [
            Record(
                topic=topic,
                partition=partition,
                offset=m["offset"],
                value=blobs[i],
                key=_unb64(m.get("key")),
                headers=m.get("headers") or {},
                produce_ts=m.get("produce_ts", 0.0),
                append_ts=m.get("append_ts", 0.0),
            )
            for i, m in enumerate(meta)
        ]

    def earliest_offset(self, topic, partition):
        return self._call("earliest_offset", topic=topic, partition=partition)

    def latest_offset(self, topic, partition):
        return self._call("latest_offset", topic=topic, partition=partition)

    def commit_offset(self, group, topic, partition, offset):
        self._call(
            "commit_offset", group=group, topic=topic, partition=partition, offset=offset
        )

    def committed_offset(self, group, topic, partition):
        return self._call("committed_offset", group=group, topic=topic, partition=partition)

    def committed_offsets(self, group):
        return self.coordinator.committed_offsets(group)

    def consumer_lag(self, group) -> dict:
        """Per-partition committed-offset lag for *group* (server-side)."""
        return {
            (t, p): lag for t, p, lag in self._call("consumer_lag", group=group)
        }

    def partition_depths(self) -> dict:
        """Per-partition depth/end-offset/bytes snapshot (server-side)."""
        return {
            (t, p): {"depth": depth, "end_offset": end, "bytes": nbytes}
            for t, p, depth, end, nbytes in self._call("partition_depths")
        }

    @property
    def requests_in_flight(self) -> int:
        """Requests currently on the wire (telemetry gauge)."""
        return self._gate.active

    def stats(self) -> dict:
        return self._call("stats")

    # -- cluster surface (sharded brokers only) -------------------------------

    def describe_cluster(self) -> dict:
        """Shard address map + epoch; ``unknown op`` on a plain broker."""
        return self._call("describe_cluster")

    def find_coordinator(self, group: str) -> dict:
        """Which shard coordinates *group*; ``unknown op`` on a plain broker."""
        return self._call("find_coordinator", group=group)

    def server_metrics(self) -> dict:
        """The serving process's reactor gauges (sharded brokers only)."""
        return self._call("server_metrics")

    def metrics_snapshot(self) -> dict:
        """The shard's typed registry snapshot for federated aggregation."""
        return self._call("metrics_snapshot")

    def events_since(self, since: int = 0) -> dict:
        """Drain the shard's control-plane event journal past ``since``."""
        return self._call("events_since", since=since)

    def trace_spans(self, since: int = 0) -> dict:
        """Drain the shard tracer's finished spans past cursor ``since``."""
        return self._call("trace_spans", since=since)

    # -- replication surface (replicated shards only) --------------------------

    def replicate_append(
        self,
        topic,
        partition,
        *,
        base_offset,
        records,
        leader,
        leader_epoch,
        high_watermark,
        producers=None,
    ):
        """Leader->follower push of a contiguous batch starting at *base_offset*.

        Record values travel as binary blobs; everything else (offsets,
        keys, timestamps) rides in the JSON frame so the follower can
        reconstruct the records byte-identically at the same offsets.
        """
        metas = []
        values = []
        for rec in records:
            metas.append(
                {
                    "offset": rec.offset,
                    "key": _b64(rec.key),
                    "headers": rec.headers or None,
                    "produce_ts": rec.produce_ts,
                    "append_ts": rec.append_ts,
                }
            )
            values.append(rec.value)
        kwargs = dict(
            topic=topic,
            partition=partition,
            base_offset=base_offset,
            records=metas,
            leader=leader,
            leader_epoch=leader_epoch,
            hwm=high_watermark,
        )
        if producers is not None:
            kwargs["producers"] = producers
        return self._call("replicate_append", _blobs=values, **kwargs)

    def replica_ack(self, topic, partition) -> dict:
        """A follower's replication progress for one partition."""
        return self._call("replica_ack", topic=topic, partition=partition)

    def replication_status(self) -> dict:
        """ISR / high-watermark state for every partition this shard leads."""
        return self._call("replication_status")
