"""Wire framing and op dispatch shared by the broker servers and client.

Protocol: length-prefixed JSON frames (4-byte big-endian length, then a
UTF-8 JSON object). A frame may additionally carry *binary blobs*: when
the JSON object has an ``"nblobs": k`` field, the frame is followed by
``k`` length-prefixed raw byte strings. The batched data-path ops
(``append_batch`` / ``fetch_batch``) move record payloads as blobs —
one socket round-trip per batch and no base64 (which inflates payloads
by ~33% and burns CPU on both ends). Small fields (keys, headers,
offsets) stay base64-in-JSON for debuggability.

Two decode styles share the same format:

* :func:`recv_frame` — blocking, for the threaded client/server paths
  (one ``recv`` loop per frame on a blocking socket).
* :class:`FrameDecoder` — incremental, for the reactor server: bytes are
  fed in whatever chunks the event loop reads and complete frames pop
  out; partial frames cost no re-parsing (the decoder remembers exactly
  how many bytes it still needs).

:func:`execute_op` is the single server-side op table, shared by the
reactor server and the legacy threaded server so both speak an
identical wire schema.
"""

from __future__ import annotations

import base64
import json
import socket
import struct

from repro.broker.message import Record
from repro.util.validation import ValidationError

LEN = struct.Struct(">I")
MAX_FRAME = 64 * 1024 * 1024

#: The kernel caps sendmsg at IOV_MAX iovec entries (1024 on Linux);
#: exceeding it fails with EMSGSIZE, so large batches go out in slices.
IOV_MAX = min(getattr(socket, "IOV_MAX", 1024), 1024)


# -- encoding ----------------------------------------------------------------


def encode_frame(payload: dict, blobs=()) -> list:
    """Encode one frame as a list of buffers (no concatenation copy)."""
    if blobs:
        payload = dict(payload)
        payload["nblobs"] = len(blobs)
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME:
        raise ValidationError(f"frame too large: {len(data)} bytes")
    buffers = [LEN.pack(len(data)), data]
    for blob in blobs:
        if len(blob) > MAX_FRAME:
            raise ValidationError(f"blob too large: {len(blob)} bytes")
        buffers.append(LEN.pack(len(blob)))
        buffers.append(blob)
    return buffers


def send_frame(sock: socket.socket, payload: dict, blobs=()) -> None:
    sendall_vectored(sock, encode_frame(payload, blobs))


def sendall_vectored(sock: socket.socket, buffers: list) -> None:
    """Send all buffers without concatenating them into one big copy."""
    if not hasattr(sock, "sendmsg"):
        sock.sendall(b"".join(buffers))
        return
    views = [memoryview(b) for b in buffers if len(b)]
    while views:
        sent = sock.sendmsg(views[:IOV_MAX])
        while sent:
            if len(views[0]) <= sent:
                sent -= len(views[0])
                views.pop(0)
            else:
                views[0] = views[0][sent:]
                sent = 0


# -- blocking decode ---------------------------------------------------------


def recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n > 0:
        chunk = sock.recv(min(n, 65536))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[dict, list[bytes]]:
    """Receive one frame (blocking); returns (json payload, binary blobs)."""
    (length,) = LEN.unpack(recv_exact(sock, 4))
    if length > MAX_FRAME:
        raise ConnectionError(f"oversized frame: {length}")
    payload = json.loads(recv_exact(sock, length).decode("utf-8"))
    blobs: list[bytes] = []
    for _ in range(int(payload.pop("nblobs", 0))):
        (blob_len,) = LEN.unpack(recv_exact(sock, 4))
        if blob_len > MAX_FRAME:
            raise ConnectionError(f"oversized blob: {blob_len}")
        blobs.append(recv_exact(sock, blob_len))
    return payload, blobs


class FrameDecoder:
    """Incremental frame assembly for non-blocking sockets.

    Feed raw chunks with :meth:`feed`; pull complete ``(payload, blobs)``
    frames with :meth:`next_frame` until it returns ``None``. The decoder
    is a four-state machine (payload length → payload body → blob length
    → blob body), so a frame arriving in many small reads is parsed
    exactly once — no rescanning, no quadratic reassembly.

    Raises :class:`ConnectionError` on protocol violations (oversized
    frame/blob, undecodable JSON); the caller should drop the connection,
    matching the blocking path's behavior.
    """

    __slots__ = ("_buf", "_state", "_need", "_payload", "_blobs", "_nblobs")

    _WANT_LEN, _WANT_PAYLOAD, _WANT_BLOB_LEN, _WANT_BLOB = range(4)

    def __init__(self) -> None:
        self._buf = bytearray()
        self._state = self._WANT_LEN
        self._need = 4
        self._payload: dict | None = None
        self._blobs: list[bytes] = []
        self._nblobs = 0

    @property
    def buffered_bytes(self) -> int:
        """Bytes held for a not-yet-complete frame (memory accounting)."""
        return len(self._buf)

    def feed(self, data) -> None:
        self._buf += data

    def _take(self, n: int) -> bytes:
        out = bytes(self._buf[:n])
        del self._buf[:n]
        return out

    def next_frame(self) -> tuple[dict, list[bytes]] | None:
        buf = self._buf
        while len(buf) >= self._need:
            state = self._state
            if state == self._WANT_LEN:
                (length,) = LEN.unpack_from(buf)
                del buf[:4]
                if length > MAX_FRAME:
                    raise ConnectionError(f"oversized frame: {length}")
                self._need = length
                self._state = self._WANT_PAYLOAD
            elif state == self._WANT_PAYLOAD:
                try:
                    payload = json.loads(self._take(self._need).decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise ConnectionError(f"undecodable frame: {exc}") from exc
                self._nblobs = int(payload.pop("nblobs", 0))
                self._payload = payload
                self._blobs = []
                if self._nblobs <= 0:
                    self._state = self._WANT_LEN
                    self._need = 4
                    self._payload = None
                    return payload, []
                self._state = self._WANT_BLOB_LEN
                self._need = 4
            elif state == self._WANT_BLOB_LEN:
                (blob_len,) = LEN.unpack_from(buf)
                del buf[:4]
                if blob_len > MAX_FRAME:
                    raise ConnectionError(f"oversized blob: {blob_len}")
                self._need = blob_len
                self._state = self._WANT_BLOB
            else:  # _WANT_BLOB
                self._blobs.append(self._take(self._need))
                if len(self._blobs) == self._nblobs:
                    payload, blobs = self._payload, self._blobs
                    self._payload, self._blobs = None, []
                    self._state = self._WANT_LEN
                    self._need = 4
                    return payload, blobs
                self._state = self._WANT_BLOB_LEN
                self._need = 4
        return None


# -- value encoding ----------------------------------------------------------


def b64(data: bytes | None) -> str | None:
    return None if data is None else base64.b64encode(data).decode("ascii")


def unb64(data: str | None) -> bytes | None:
    return None if data is None else base64.b64decode(data)


def record_to_wire(record: Record) -> dict:
    return {
        "topic": record.topic,
        "partition": record.partition,
        "offset": record.offset,
        "value": b64(record.value),
        "key": b64(record.key),
        "headers": record.headers,
        "produce_ts": record.produce_ts,
        "append_ts": record.append_ts,
    }


def record_from_wire(obj: dict) -> Record:
    return Record(
        topic=obj["topic"],
        partition=obj["partition"],
        offset=obj["offset"],
        value=unb64(obj["value"]) or b"",
        key=unb64(obj.get("key")),
        headers=obj.get("headers") or {},
        produce_ts=obj.get("produce_ts", 0.0),
        append_ts=obj.get("append_ts", 0.0),
    )


def record_meta_to_wire(record: Record) -> dict:
    """Record metadata for ``fetch_batch``: the value travels as a blob."""
    return {
        "offset": record.offset,
        "key": b64(record.key),
        "headers": record.headers,
        "produce_ts": record.produce_ts,
        "append_ts": record.append_ts,
    }


def format_fetch(op: str, records) -> tuple:
    """(result, out_blobs) for a fetch-style op's records."""
    if op == "fetch_batch":
        return [record_meta_to_wire(r) for r in records], [r.value for r in records]
    return [record_to_wire(r) for r in records], ()


# -- server-side op table ----------------------------------------------------


def execute_op(broker, request: dict, blobs: list) -> tuple:
    """Dispatch one decoded request against *broker*.

    Returns ``(result, out_blobs)``; raises whatever the broker raises
    (the caller maps exceptions onto wire error responses). Both broker
    servers route every op through this table, so the wire schema cannot
    drift between them.
    """
    op = request.get("op")
    if op == "create_topic":
        topic = broker.create_topic(
            request["topic"],
            num_partitions=request.get("num_partitions", 1),
            exist_ok=request.get("exist_ok", False),
        )
        return {"partitions": topic.num_partitions}, ()
    if op == "num_partitions":
        return broker.topic(request["topic"]).num_partitions, ()
    if op == "list_topics":
        return broker.list_topics(), ()
    if op == "append":
        md = broker.append(
            request["topic"],
            request["partition"],
            unb64(request["value"]) or b"",
            key=unb64(request.get("key")),
            headers=request.get("headers"),
            produce_ts=request.get("produce_ts"),
            producer_id=request.get("producer_id"),
            producer_epoch=request.get("producer_epoch", 0),
            sequence=request.get("sequence"),
            acks=request.get("acks"),
        )
        return {"offset": md.offset}, ()
    if op == "append_batch":
        # Values arrive as the frame's binary blobs — no base64.
        keys = request.get("keys")
        md = broker.append_many(
            request["topic"],
            request["partition"],
            blobs,
            keys=None if keys is None else [unb64(k) for k in keys],
            headers=request.get("headers"),
            produce_ts=request.get("produce_ts"),
            producer_id=request.get("producer_id"),
            producer_epoch=request.get("producer_epoch", 0),
            base_sequence=request.get("base_sequence"),
            acks=request.get("acks"),
        )
        return {"base_offset": md.base_offset, "count": md.count}, ()
    if op == "register_producer":
        pid, epoch = broker.register_producer(request["client_id"])
        return {"producer_id": pid, "epoch": epoch}, ()
    if op in ("fetch", "fetch_batch"):
        records = broker.fetch(
            request["topic"],
            request["partition"],
            request["offset"],
            max_records=request.get("max_records", 64),
            timeout=request.get("timeout", 0.0),
            min_bytes=request.get("min_bytes", 1),
        )
        return format_fetch(op, records)
    if op == "earliest_offset":
        return broker.earliest_offset(request["topic"], request["partition"]), ()
    if op == "latest_offset":
        return broker.latest_offset(request["topic"], request["partition"]), ()
    if op == "commit_offset":
        broker.commit_offset(
            request["group"], request["topic"], request["partition"], request["offset"]
        )
        return None, ()
    if op == "committed_offset":
        return (
            broker.committed_offset(
                request["group"], request["topic"], request["partition"]
            ),
            (),
        )
    if op == "group_join":
        kwargs = {}
        if request.get("session_timeout_ms") is not None:
            kwargs["session_timeout_ms"] = request["session_timeout_ms"]
        return (
            broker.coordinator.join(
                request["group"], request["member"], request["topics"], **kwargs
            ),
            (),
        )
    if op == "group_heartbeat":
        return (
            broker.coordinator.heartbeat(request["group"], request["member"]),
            (),
        )
    if op == "group_leave":
        broker.coordinator.leave(request["group"], request["member"])
        return None, ()
    if op == "group_assignment":
        generation, assignment = broker.coordinator.assignment(
            request["group"], request["member"]
        )
        return {"generation": generation, "assignment": assignment}, ()
    if op == "group_generation":
        return broker.coordinator.generation(request["group"]), ()
    if op == "group_ids":
        return broker.coordinator.group_ids(), ()
    if op == "group_members":
        return broker.coordinator.members(request["group"]), ()
    if op == "committed_offsets":
        return (
            [[t, p, off] for (t, p), off in broker.committed_offsets(request["group"]).items()],
            (),
        )
    if op == "consumer_lag":
        return (
            [[t, p, lag] for (t, p), lag in broker.consumer_lag(request["group"]).items()],
            (),
        )
    if op == "partition_depths":
        return (
            [
                [t, p, d["depth"], d["end_offset"], d["bytes"]]
                for (t, p), d in broker.partition_depths().items()
            ],
            (),
        )
    if op == "stats":
        return broker.stats(), ()
    if op == "group_topics":
        return sorted(broker.coordinator.group_topics(request["group"])), ()
    if op == "describe_cluster":
        # Only shard brokers carry cluster metadata; a plain broker
        # answers "unknown op" so old single-broker clients (and the
        # bootstrap probe) can tell the two apart.
        describe = getattr(broker, "describe_cluster", None)
        if describe is None:
            raise ValidationError(f"unknown op {op!r}")
        return describe(), ()
    if op == "find_coordinator":
        find = getattr(broker, "find_coordinator", None)
        if find is None:
            raise ValidationError(f"unknown op {op!r}")
        return find(request["group"]), ()
    if op == "server_metrics":
        metrics = getattr(broker, "server_metrics", None)
        if metrics is None:
            raise ValidationError(f"unknown op {op!r}")
        return metrics(), ()
    if op == "replicate_append":
        # Leader → follower batch push. Values travel as blobs (like
        # fetch_batch, the format this mirrors); offsets are preserved
        # exactly — a replica log is a byte-for-byte copy of the
        # leader's, not a re-append.
        handler = getattr(broker, "replicate_append", None)
        if handler is None:
            raise ValidationError(f"unknown op {op!r}")
        topic = request["topic"]
        partition = request["partition"]
        records = [
            Record(
                topic=topic,
                partition=partition,
                offset=m["offset"],
                value=blobs[i],
                key=unb64(m.get("key")),
                headers=m.get("headers") or {},
                produce_ts=m.get("produce_ts", 0.0),
                append_ts=m.get("append_ts", 0.0),
            )
            for i, m in enumerate(request.get("records", ()))
        ]
        return (
            handler(
                topic,
                partition,
                base_offset=request["base_offset"],
                records=records,
                leader=request.get("leader", 0),
                leader_epoch=request.get("leader_epoch", 0),
                high_watermark=request.get("hwm", 0),
                producers=request.get("producers"),
            ),
            (),
        )
    if op == "replica_ack":
        handler = getattr(broker, "replica_ack", None)
        if handler is None:
            raise ValidationError(f"unknown op {op!r}")
        return handler(request["topic"], request["partition"]), ()
    if op == "replication_status":
        handler = getattr(broker, "replication_status", None)
        if handler is None:
            raise ValidationError(f"unknown op {op!r}")
        return handler(), ()
    if op == "metrics_snapshot":
        # Federated metrics scrape: the shard's typed registry snapshot,
        # merged supervisor-side by the cluster aggregator.
        handler = getattr(broker, "metrics_snapshot", None)
        if handler is None:
            raise ValidationError(f"unknown op {op!r}")
        return handler(), ()
    if op == "events_since":
        handler = getattr(broker, "events_since", None)
        if handler is None:
            raise ValidationError(f"unknown op {op!r}")
        return handler(request.get("since", 0)), ()
    if op == "trace_spans":
        handler = getattr(broker, "trace_spans", None)
        if handler is None:
            raise ValidationError(f"unknown op {op!r}")
        return handler(request.get("since", 0)), ()
    raise ValidationError(f"unknown op {op!r}")


def is_parkable(request: dict) -> bool:
    """Requests that may legitimately block server-side (long-polls)."""
    if request.get("op") not in ("fetch", "fetch_batch"):
        return False
    try:
        return float(request.get("timeout") or 0.0) > 0
    except (TypeError, ValueError):
        return False
