"""Segment-backed durable log store with group-commit and mmap reads.

The write path is Kafka's: appends park their records in an in-memory
*pending* queue (paying only exact-size arithmetic on the ack path); a
single :class:`GroupCommitFlusher` thread wakes every ``flush_ms`` (or
immediately when ``flush_bytes`` of data or a durability waiter is
pending) and retires the whole queue — encoding each batch (CRC
included) into writev-ready buffer lists right before one ``writev`` +
one ``fsync`` — so N concurrent producers pay one serialization pass
and one disk sync between them, not one each. With ``fsync_acks=True`` an append blocks until its batch
is on disk (group-committed with everything else in the window); with
the default ``False`` the ack is in-memory and the fsync happens on the
flush timer, bounding the loss window to one flush interval — the
replicated deployment covers that window via ``acks="all"``.

The read path: *sealed* (rolled) segments are memory-mapped, and batch
decoding returns records whose values are ``memoryview`` slices of the
mapping — fetches of cold data come straight off the OS page cache with
zero copies and zero syscalls. The hot tail (the active segment) is
never read from disk at all: :class:`~repro.broker.partition.PartitionLog`
keeps those records in its in-memory deque and only consults the store
for offsets below the active segment's base.

Recovery scans **only the active segment** (CRC-verifying every batch,
truncating at the first torn/corrupt one); sealed segments are trusted
by construction — they were fsynced and renamed into immutability at
roll time — and their sparse indexes are rebuilt lazily if missing, so
boot cost is linear in the active segment size, not the log size.
"""

from __future__ import annotations

import json
import mmap
import os
import threading
import time
from bisect import bisect_right
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import NamedTuple

from repro.broker.storage.segment import (
    build_sparse_index,
    decode_batch,
    encode_batch,
    encoded_batch_size,
    read_batch_info,
    read_index_file,
    scan_batches,
    segment_filename,
    write_index_file,
    INDEX_SUFFIX,
    LOG_SUFFIX,
)
from repro.util.validation import check_non_negative, check_positive

#: Producer dedup window replayed into snapshots (mirrors
#: ``partition._DEDUP_WINDOW`` — kept local to avoid a circular import).
_DEDUP_WINDOW = 5

#: Producer-state snapshot file (JSON, atomically replaced).
SNAPSHOT_FILE = "producer.snap"

#: writev is capped at IOV_MAX buffers per call; stay safely below it.
_IOV_CHUNK = 512


class StorageError(RuntimeError):
    """The store is unusable (closed, or a previous flush failed)."""


class TornWriteError(StorageError):
    """An injected torn write: the flush died mid-batch (crash stand-in)."""


@dataclass(frozen=True)
class StorageConfig:
    """Knobs of the on-disk log backend.

    ``segment_bytes`` bounds both roll size and recovery cost (recovery
    scans one active segment); ``flush_ms``/``flush_bytes`` set the
    group-commit window; ``fsync_acks`` makes appends block until their
    batch is fsynced (single-node durability) instead of relying on the
    background window + replication. ``decode_cache_records`` bounds the
    per-partition LRU of decoded sealed batches (0 disables it): hot
    sealed ranges — replays, lagging consumers, fan-out groups — decode
    once instead of per fetch.
    """

    segment_bytes: int = 32 * 1024 * 1024
    segment_seconds: float = 0.0  # 0 = roll by size only
    flush_ms: float = 50.0
    flush_bytes: int = 1024 * 1024
    fsync_acks: bool = False
    index_interval_bytes: int = 4096
    decode_cache_records: int = 16384

    def __post_init__(self) -> None:
        check_positive("segment_bytes", self.segment_bytes)
        check_non_negative("segment_seconds", self.segment_seconds)
        check_positive("flush_ms", self.flush_ms)
        check_positive("flush_bytes", self.flush_bytes)
        check_positive("index_interval_bytes", self.index_interval_bytes)
        check_non_negative("decode_cache_records", self.decode_cache_records)


class RecoveryResult(NamedTuple):
    """What a boot-time scan reconstructed."""

    records: list  # active-segment records (the hot tail, for the deque)
    base_offset: int  # earliest retained offset across all segments
    next_offset: int  # offset the next append will get
    producer_snapshot: dict  # wire-format idempotence state
    scan_bytes: int  # bytes CRC-scanned (active segment only)
    truncated_bytes: int  # torn tail dropped by the CRC scan
    segments: int  # sealed segments adopted without scanning


class GroupCommitFlusher:
    """One background thread amortizing ``write``+``fsync`` across stores.

    Stores enqueue themselves via :meth:`request`; the thread collects a
    window's worth (``flush_ms``, cut short by *urgent* requests) and
    flushes each dirty store once. One flusher serves every partition of
    a broker, so a broker-wide burst costs one fsync per partition per
    window regardless of producer count.
    """

    def __init__(self, flush_ms: float = 50.0) -> None:
        check_positive("flush_ms", flush_ms)
        self._interval = flush_ms / 1000.0
        self._cond = threading.Condition()
        self._dirty: set = set()
        self._urgent = False
        self._stopping = False
        self._thread: threading.Thread | None = None

    def _ensure_thread(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="log-flusher", daemon=True
            )
            self._thread.start()

    def request(self, store, urgent: bool = False) -> None:
        """Mark *store* dirty; *urgent* skips the group-commit window."""
        with self._cond:
            if self._stopping:
                raise StorageError("flusher is stopped")
            self._ensure_thread()
            self._dirty.add(store)
            if urgent:
                self._urgent = True
            self._cond.notify()

    def _run(self) -> None:
        cond = self._cond
        while True:
            with cond:
                while not self._dirty and not self._stopping:
                    cond.wait()
                if self._stopping and not self._dirty:
                    return
                if not self._urgent and not self._stopping:
                    # The group-commit window: let concurrent appends
                    # pile into pending so one fsync covers them all.
                    cond.wait(self._interval)
                stores = list(self._dirty)
                self._dirty.clear()
                self._urgent = False
            for store in stores:
                try:
                    store.flush()
                except StorageError:
                    pass  # the store marked itself failed; waiters see it

    def stop(self) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None


class _DecodeCache:
    """Record-count-bounded LRU of decoded sealed batches.

    Decoding a batch off the mmap costs ~1µs of struct/object work per
    record; the deque (hot tail) pays none of that because its records
    are born decoded. This cache gives re-read sealed data the same
    property: the first fetch decodes, every later fetch of the batch —
    another consumer in the group, a replay, a lagging follower — is a
    dict hit. Values inside cached records stay zero-copy
    ``memoryview`` slices (they pin their segment's mapping, which is
    why the cache is cleared whenever segments are unwound or evicted).
    """

    __slots__ = ("capacity", "_entries", "_records", "_lock", "counters")

    def __init__(self, capacity_records: int, counters: dict) -> None:
        self.capacity = capacity_records
        self._entries: OrderedDict = OrderedDict()
        self._records = 0
        self._lock = threading.Lock()
        self.counters = counters

    def get(self, key) -> list | None:
        if not self.capacity:
            return None
        with self._lock:
            records = self._entries.get(key)
            if records is None:
                self.counters["decode_cache_misses"] += 1
                return None
            self._entries.move_to_end(key)
            self.counters["decode_cache_hits"] += 1
            return records

    def put(self, key, records: list) -> None:
        if not self.capacity or not records:
            return
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = records
            self._records += len(records)
            while self._records > self.capacity and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                self._records -= len(evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._records = 0


class _SealedSegment:
    """An immutable, memory-mapped segment of the log."""

    __slots__ = (
        "base",
        "end",
        "size",
        "path",
        "index_path",
        "last_write_ts",
        "_mmap",
        "_view",
        "_dense",
        "_open_lock",
    )

    def __init__(self, path: str, base: int, end: int, size: int,
                 last_write_ts: float, batches: list | None = None):
        self.path = path
        self.index_path = path[: -len(LOG_SUFFIX)] + INDEX_SUFFIX
        self.base = base
        self.end = end
        self.size = size
        #: Monotonic timestamp of the newest record (age retention).
        self.last_write_ts = last_write_ts
        self._mmap = None
        self._view = None
        #: Dense ``[(base_offset, file_pos)]`` for every batch — handed
        #: over for free at roll time, or rebuilt by one lazy header
        #: scan for segments adopted at boot. Lets a read jump straight
        #: to its batch (and, on a decode-cache hit, skip parsing the
        #: batch header entirely).
        self._dense = batches
        self._open_lock = threading.Lock()

    def open_map(self):
        with self._open_lock:
            if self._view is None:
                with open(self.path, "rb") as fh:
                    self._mmap = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                self._view = memoryview(self._mmap)
            return self._view

    def dense_index(self, interval_bytes: int, counters: dict) -> list:
        """Dense per-batch positions, built by one header scan if absent.

        The scan also restores a missing/corrupt on-disk sparse index
        (the crash-recovery story for index files: they are pure caches,
        rebuilt from the segment itself).
        """
        with self._open_lock:
            if self._dense is not None:
                return self._dense
        view = self.open_map()
        dense = [
            (info.base_offset, info.pos)
            for info in scan_batches(view, 0, self.size)
        ]
        if read_index_file(self.index_path) is None:
            counters["index_rebuilds"] = counters.get("index_rebuilds", 0) + 1
            try:
                write_index_file(
                    self.index_path, build_sparse_index(dense, interval_bytes)
                )
            except OSError:
                pass  # cache only; serve from memory regardless
        with self._open_lock:
            self._dense = dense
        return dense

    def read(self, offset: int, max_count: int, topic: str, partition: int,
             interval_bytes: int, counters: dict, cache=None) -> list:
        """Records in ``[offset, offset+max_count)`` held by this segment."""
        dense = self._dense
        if dense is None:
            dense = self.dense_index(interval_bytes, counters)
        # (offset,) sorts before (offset, pos): lands on the first batch
        # whose base is >= offset, step back to the one containing it.
        i = bisect_right(dense, (offset,)) - 1
        if i < 0:
            i = 0
        n = len(dense)
        end_cap = offset + max_count
        seg_base = self.base
        get = cache.get if cache is not None else None
        view = None
        out: list = []
        while i < n:
            base, pos = dense[i]
            if base >= end_cap:
                break
            records = get((seg_base, pos)) if get is not None else None
            if records is None:
                if view is None:
                    view = self.open_map()
                info = read_batch_info(view, pos, self.size)
                if info is None:
                    break
                records = decode_batch(view, info, topic, partition)
                if cache is not None:
                    cache.put((seg_base, pos), records)
            if base + len(records) <= offset:
                i += 1
                continue
            if base < offset:
                records = records[offset - base :]
            out.extend(records)
            if len(out) >= max_count:
                del out[max_count:]
                break
            i += 1
        return out

    def close(self) -> None:
        with self._open_lock:
            view, self._view = self._view, None
            mapped, self._mmap = self._mmap, None
        try:
            if view is not None:
                view.release()
            if mapped is not None:
                mapped.close()
        except (BufferError, ValueError):
            # Zero-copy views are still in flight; the mapping dies with
            # its last reference instead.
            pass


class _PendingBatch(NamedTuple):
    """An appended-but-unflushed batch.

    Holds the *records*, not their encoding: the flusher encodes (CRC
    included) right before the ``writev``, so the producer's ack path
    pays only size arithmetic — serialization is amortized into the
    group-commit window alongside the fsync.
    """

    base: int
    end: int
    nbytes: int  # exact encoded size (encoded_batch_size)
    records: list
    producer_id: int | None
    producer_epoch: int
    base_sequence: int | None
    write_ts: float

    def encode(self) -> list:
        buffers, nbytes = encode_batch(
            self.records,
            self.producer_id,
            self.producer_epoch,
            self.base_sequence,
            self.write_ts,
        )
        if nbytes != self.nbytes:
            raise StorageError(
                f"encoded batch size {nbytes} != accounted {self.nbytes}"
            )
        return buffers


class _MirrorState:
    """Store-side replica of a producer's dedup window (flushed data only)."""

    __slots__ = ("epoch", "last_sequence", "recent")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.last_sequence = -1
        self.recent: deque = deque(maxlen=_DEDUP_WINDOW)


class SegmentStore:
    """Durable backend for one partition: segments + group-commit + mmap.

    The store never takes the owning :class:`PartitionLog`'s lock — the
    log calls in (holding its lock) and the flusher thread only ever
    takes store locks, so the lock order is strictly log → store.
    """

    def __init__(
        self,
        directory: str,
        topic: str,
        partition: int,
        config: StorageConfig | None = None,
        flusher: GroupCommitFlusher | None = None,
        journal=None,
        registry=None,
    ) -> None:
        self.topic = topic
        self.partition = int(partition)
        self.config = config or StorageConfig()
        self.directory = directory
        self._flusher = flusher
        # Observability hooks, duck-typed to avoid importing the
        # monitoring package from the storage layer: ``journal`` quacks
        # like EventJournal (``emit``), ``registry`` like
        # MetricsRegistry (``histogram``/``gauge``). Either may be None.
        self.journal = journal
        self.registry = registry
        # A flush whose device I/O alone exceeds this is journalled as a
        # flush_stall: 5x the commit window, floored at 250 ms so a
        # tight window doesn't turn every slow fsync into an incident.
        self.flush_stall_s = max(0.25, 5.0 * self.config.flush_ms / 1000.0)
        #: Optional :class:`repro.faults.FaultInjector`; its ``on_flush``
        #: hook can tear a flush mid-batch (crash-recovery tests).
        self.fault_injector = None
        #: Optional callback ``(topic, partition, base, end, path, size)``
        #: invoked with the file still on disk before a retention-evicted
        #: segment is unlinked — the tiered-offload hook.
        self.on_evict = None
        # _lock guards in-memory state; _io_lock serializes file mutation
        # (flush/roll/truncate). _io_lock is taken first, never while
        # holding _lock.
        self._lock = threading.Lock()
        self._flush_cond = threading.Condition(self._lock)
        self._io_lock = threading.RLock()
        self._sealed: list[_SealedSegment] = []
        self._pending: list[_PendingBatch] = []
        self._pending_bytes = 0
        self._mirror: dict[int, _MirrorState] = {}
        self._snapshot_as_of = 0
        self._failed: BaseException | None = None
        self._closed = False
        self.counters: dict = {
            "appended_batches": 0,
            "flushes": 0,
            "fsyncs": 0,
            "flushed_bytes": 0,
            "segments_sealed": 0,
            "segments_deleted": 0,
            "segments_offloaded": 0,
            "index_rebuilds": 0,
            "truncations": 0,
            "torn_writes": 0,
            "recovered_records": 0,
            "recovered_batches": 0,
            "recovery_scan_bytes": 0,
            "decode_cache_hits": 0,
            "decode_cache_misses": 0,
        }
        self._decode_cache = _DecodeCache(
            self.config.decode_cache_records, self.counters
        )
        self._active_fd = -1
        self._active_path = ""
        self._active_base = 0
        self._active_size = 0  # flushed bytes in the active file
        self._active_batches: list = []  # (base_offset, file_pos) per batch
        self._active_opened = time.monotonic()
        self._last_write_ts = time.monotonic()
        self._base_offset = 0
        self._end_offset = 0  # next offset (includes pending)
        self._flushed_offset = 0  # durable end
        recover_start = time.monotonic()
        self.recovered = self._recover()
        duration = time.monotonic() - recover_start
        if registry is not None:
            registry.histogram("storage.recovery_seconds").observe(duration)
        if journal is not None:
            journal.emit(
                "recovery_completed",
                topic=self.topic,
                partition=self.partition,
                records=len(self.recovered.records),
                scan_bytes=self.recovered.scan_bytes,
                truncated_bytes=self.recovered.truncated_bytes,
                segments=self.recovered.segments,
                next_offset=self.recovered.next_offset,
                duration_ms=round(duration * 1000.0, 3),
            )

    # -- boot-time recovery --------------------------------------------------

    def _recover(self) -> RecoveryResult:
        os.makedirs(self.directory, exist_ok=True)
        logs = sorted(
            f for f in os.listdir(self.directory) if f.endswith(LOG_SUFFIX)
        )
        now_mono = time.monotonic()
        now_wall = time.time()
        for name in logs[:-1]:
            # Sealed segments are adopted without scanning: their length
            # and offset range follow from the file sizes and the next
            # segment's base offset (segments are dense). Ages survive
            # the restart via mtime (monotonic clocks do not).
            path = os.path.join(self.directory, name)
            base = int(name[: -len(LOG_SUFFIX)])
            stat = os.stat(path)
            seg = _SealedSegment(path, base, 0, stat.st_size,
                                 now_mono - max(0.0, now_wall - stat.st_mtime))
            self._sealed.append(seg)
        active_name = logs[-1] if logs else segment_filename(0)
        active_path = os.path.join(self.directory, active_name)
        active_base = int(active_name[: -len(LOG_SUFFIX)])
        for i, seg in enumerate(self._sealed):
            seg.end = (
                self._sealed[i + 1].base if i + 1 < len(self._sealed) else active_base
            )
            seg.open_map()

        # The active segment is the only file a crash can have torn:
        # CRC-scan it, truncate at the first bad batch, and rebuild the
        # dense batch index + the hot-tail records from the valid prefix.
        records: list = []
        batches: list = []
        valid_end = 0
        file_size = 0
        next_offset = active_base
        producer_batches: list = []
        if os.path.exists(active_path):
            with open(active_path, "rb") as fh:
                data = fh.read()
            file_size = len(data)
            for info in scan_batches(data, 0, file_size, verify_crc=True):
                batches.append((info.base_offset, info.pos))
                records.extend(
                    decode_batch(data, info, self.topic, self.partition, copy=True)
                )
                if info.producer_id >= 0:
                    producer_batches.append(info)
                valid_end = info.end_pos
                next_offset = info.end_offset
            if valid_end < file_size:
                os.truncate(active_path, valid_end)

        snapshot_as_of, mirror = self._load_snapshot(active_base)
        for info in producer_batches:
            if info.base_offset >= snapshot_as_of:
                self._mirror_apply(
                    mirror,
                    info.producer_id,
                    info.producer_epoch,
                    info.base_sequence,
                    info.base_offset,
                    info.count,
                )
        self._mirror = mirror

        self._active_fd = os.open(
            active_path, os.O_CREAT | os.O_RDWR | os.O_APPEND, 0o644
        )
        self._active_path = active_path
        self._active_base = active_base
        self._active_size = valid_end
        self._active_batches = batches
        self._base_offset = self._sealed[0].base if self._sealed else active_base
        self._end_offset = next_offset
        self._flushed_offset = next_offset
        self.counters["recovered_records"] = len(records)
        self.counters["recovered_batches"] = len(batches)
        self.counters["recovery_scan_bytes"] = file_size
        return RecoveryResult(
            records=records,
            base_offset=self._base_offset,
            next_offset=next_offset,
            producer_snapshot=self._mirror_snapshot_locked(),
            scan_bytes=file_size,
            truncated_bytes=file_size - valid_end,
            segments=len(self._sealed),
        )

    def _load_snapshot(self, default_as_of: int) -> tuple[int, dict]:
        path = os.path.join(self.directory, SNAPSHOT_FILE)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return default_as_of, {}
        mirror: dict[int, _MirrorState] = {}
        for pid_str, entry in data.get("producers", {}).items():
            state = _MirrorState(int(entry["epoch"]))
            state.last_sequence = int(entry["last_sequence"])
            for seq, offset, n in entry.get("recent", ()):
                state.recent.append((int(seq), int(offset), int(n)))
            mirror[int(pid_str)] = state
        return int(data.get("as_of", default_as_of)), mirror

    # -- producer-state mirror ----------------------------------------------

    @staticmethod
    def _mirror_apply(mirror, pid, epoch, base_seq, base_offset, count) -> None:
        state = mirror.get(pid)
        if state is None or epoch > state.epoch:
            state = _MirrorState(epoch)
            state.last_sequence = base_seq - 1
            mirror[pid] = state
        elif epoch < state.epoch:
            return
        if base_seq + count - 1 > state.last_sequence:
            state.last_sequence = base_seq + count - 1
            state.recent.append((base_seq, base_offset, count))

    def _mirror_snapshot_locked(self) -> dict:
        return {
            str(pid): {
                "epoch": state.epoch,
                "last_sequence": state.last_sequence,
                "recent": [list(entry) for entry in state.recent],
            }
            for pid, state in self._mirror.items()
        }

    def _write_snapshot(self, snapshot: dict, as_of: int) -> None:
        """Best-effort (no fsync) snapshot write; recovery replays the
        active segment on top, so a lost snapshot only costs replay of
        batches it already covered."""
        path = os.path.join(self.directory, SNAPSHOT_FILE)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"as_of": as_of, "producers": snapshot}, fh)
            os.replace(tmp, path)
        except OSError:
            pass

    def save_producer_snapshot(self, snapshot: dict) -> None:
        """Adopt a full snapshot pushed by replication.

        Replica installs carry no per-batch producer ids (the leader
        deduplicated), so the pushed snapshot is a follower's only
        source of dedup state across a restart. Snapshots arrive with
        *every* replicated batch, so this only updates the in-memory
        mirror — the file is written at roll/close time (a crash loses
        at most the window since the last roll, and the leader re-pushes
        on the first post-restart batch anyway).
        """
        mirror: dict[int, _MirrorState] = {}
        for pid_str, entry in snapshot.items():
            state = _MirrorState(int(entry["epoch"]))
            state.last_sequence = int(entry["last_sequence"])
            for seq, offset, n in entry.get("recent", ()):
                state.recent.append((int(seq), int(offset), int(n)))
            mirror[int(pid_str)] = state
        with self._lock:
            self._mirror = mirror

    # -- write path ----------------------------------------------------------

    def append_batch(
        self,
        records,
        producer_id: int | None = None,
        producer_epoch: int = 0,
        base_sequence: int | None = None,
    ) -> int:
        """Enqueue an encoded batch; returns its end offset.

        Does not block on disk — the flusher retires the queue. Call
        :meth:`wait_durable` (or configure ``fsync_acks`` at the
        :class:`PartitionLog` layer) for commit-before-ack semantics.
        """
        if not records:
            return self._end_offset
        now = time.monotonic()
        nbytes = encoded_batch_size(records)
        with self._lock:
            self._raise_if_unusable()
            batch = _PendingBatch(
                records[0].offset,
                records[-1].offset + 1,
                nbytes,
                list(records),
                producer_id,
                producer_epoch,
                base_sequence,
                now,
            )
            self._pending.append(batch)
            self._pending_bytes += nbytes
            self._end_offset = batch.end
            self.counters["appended_batches"] += 1
            urgent = (
                self._pending_bytes >= self.config.flush_bytes
                or self.config.fsync_acks
            )
        if self._flusher is not None:
            self._flusher.request(self, urgent=urgent)
        return batch.end

    def wait_durable(self, offset: int, timeout: float) -> bool:
        """Block until everything below *offset* is written + fsynced."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._flushed_offset < offset:
                self._raise_if_unusable()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._flush_cond.wait(remaining)
            return True

    def _raise_if_unusable(self) -> None:
        if self._failed is not None:
            raise StorageError(
                f"store {self.topic}/{self.partition} failed: {self._failed}"
            ) from self._failed
        if self._closed:
            raise StorageError(f"store {self.topic}/{self.partition} is closed")

    def flush(self) -> int:
        """Write + fsync every pending batch (one sync for the window)."""
        with self._io_lock:
            return self._flush_io()

    def _flush_io(self) -> int:
        # Caller holds _io_lock.
        with self._lock:
            if self._closed or self._failed is not None:
                return self._flushed_offset
            pending = self._pending
            if not pending:
                flushed = self._flushed_offset
                age_roll = (
                    self.config.segment_seconds > 0
                    and self._active_size > 0
                    and time.monotonic() - self._active_opened
                    >= self.config.segment_seconds
                )
                if not age_roll:
                    return flushed
                pending = []
            else:
                self._pending = []
                self._pending_bytes = 0
        io_elapsed = 0.0
        try:
            if pending:
                injector = self.fault_injector
                if injector is not None and injector.on_flush(
                    f"{self.topic}/{self.partition}"
                ):
                    self._torn_write(pending)
                buffers: list = []
                for batch in pending:
                    buffers.extend(batch.encode())
                io_start = time.perf_counter()
                self._write_buffers(buffers)
                os.fsync(self._active_fd)
                io_elapsed = time.perf_counter() - io_start
        except TornWriteError:
            raise
        except BaseException as exc:
            with self._lock:
                self._failed = exc
                self._flush_cond.notify_all()
            raise StorageError(f"flush failed: {exc}") from exc
        with self._lock:
            if pending:
                pos = self._active_size
                for batch in pending:
                    self._active_batches.append((batch.base, pos))
                    pos += batch.nbytes
                    if batch.producer_id is not None and batch.base_sequence is not None:
                        self._mirror_apply(
                            self._mirror,
                            batch.producer_id,
                            batch.producer_epoch,
                            batch.base_sequence,
                            batch.base,
                            batch.end - batch.base,
                        )
                self._active_size = pos
                self._flushed_offset = pending[-1].end
                self._last_write_ts = pending[-1].write_ts
                self.counters["flushes"] += 1
                self.counters["fsyncs"] += 1
                self.counters["flushed_bytes"] += sum(b.nbytes for b in pending)
                self._flush_cond.notify_all()
            flushed = self._flushed_offset
            pending_bytes_now = self._pending_bytes
        if pending:
            registry = self.registry
            if registry is not None:
                registry.histogram("storage.fsync_latency_seconds").observe(io_elapsed)
                now = time.monotonic()
                registry.histogram("storage.flush_window_seconds").observe_many(
                    [now - b.write_ts for b in pending]
                )
                registry.gauge(
                    f"storage.pending_bytes.{self.topic}.{self.partition}"
                ).set(pending_bytes_now)
            journal = self.journal
            if journal is not None and io_elapsed >= self.flush_stall_s:
                journal.emit(
                    "flush_stall",
                    topic=self.topic,
                    partition=self.partition,
                    duration_ms=round(io_elapsed * 1000.0, 3),
                    bytes=sum(b.nbytes for b in pending),
                    batches=len(pending),
                )
        self._maybe_roll_io()
        return flushed

    def _write_buffers(self, buffers: list) -> None:
        fd = self._active_fd
        for i in range(0, len(buffers), _IOV_CHUNK):
            chunk = buffers[i : i + _IOV_CHUNK]
            expected = sum(len(b) for b in chunk)
            written = os.writev(fd, chunk)
            if written != expected:
                # Partial writev on a regular file is ENOSPC territory,
                # but handle it: fall back to a joined tail write.
                tail = b"".join(bytes(b) for b in chunk)[written:]
                os.write(fd, tail)

    def _torn_write(self, pending: list) -> None:
        """Injected crash: persist all but half of the final batch, then die."""
        buffers: list = []
        for batch in pending[:-1]:
            buffers.extend(batch.encode())
        last = b"".join(bytes(b) for b in pending[-1].encode())
        buffers.append(last[: len(last) // 2])
        self._write_buffers(buffers)
        os.fsync(self._active_fd)
        exc = TornWriteError(
            f"injected torn write on {self.topic}/{self.partition}"
        )
        with self._lock:
            self._failed = exc
            self.counters["torn_writes"] += 1
            self._flush_cond.notify_all()
        raise exc

    # -- segment roll --------------------------------------------------------

    def _maybe_roll_io(self) -> None:
        # Caller holds _io_lock; pending has just been flushed.
        with self._lock:
            if self._active_size <= 0:
                return
            size_due = self._active_size >= self.config.segment_bytes
            age_due = (
                self.config.segment_seconds > 0
                and time.monotonic() - self._active_opened
                >= self.config.segment_seconds
            )
            if not size_due and not age_due:
                return
            base = self._active_base
            end = self._flushed_offset
            size = self._active_size
            batches = list(self._active_batches)
            snapshot = self._mirror_snapshot_locked()
            last_ts = self._last_write_ts
        # Seal: the file is complete and fsynced; freeze a sparse index
        # and the producer snapshot next to it, then swap in a fresh
        # active segment. Readers flip from the deque to the mmap only
        # after the sealed entry is published under the lock.
        os.close(self._active_fd)
        seg = _SealedSegment(self._active_path, base, end, size, last_ts,
                             batches=batches)
        try:
            write_index_file(
                seg.index_path,
                build_sparse_index(batches, self.config.index_interval_bytes),
            )
        except OSError:
            pass
        self._write_snapshot(snapshot, end)
        seg.open_map()
        new_path = os.path.join(self.directory, segment_filename(end))
        new_fd = os.open(new_path, os.O_CREAT | os.O_RDWR | os.O_APPEND, 0o644)
        with self._lock:
            self._sealed.append(seg)
            self._active_fd = new_fd
            self._active_path = new_path
            self._active_base = end
            self._active_size = 0
            self._active_batches = []
            self._active_opened = time.monotonic()
            self._snapshot_as_of = end
            self.counters["segments_sealed"] += 1

    # -- read path -----------------------------------------------------------

    @property
    def active_base(self) -> int:
        """Base offset of the active segment = first offset NOT served
        from mmap. The partition log keeps ``[active_base, end)`` in
        memory and evicts below it."""
        with self._lock:
            return self._active_base

    @property
    def earliest_offset(self) -> int:
        with self._lock:
            return self._base_offset

    @property
    def next_offset(self) -> int:
        with self._lock:
            return self._end_offset

    @property
    def flushed_offset(self) -> int:
        with self._lock:
            return self._flushed_offset

    @property
    def size_bytes(self) -> int:
        """Total log footprint on disk (framing included) + pending."""
        with self._lock:
            return (
                sum(seg.size for seg in self._sealed)
                + self._active_size
                + self._pending_bytes
            )

    def read(self, offset: int, max_count: int) -> list:
        """Records from sealed segments (mmap, zero-copy), capped at the
        active segment's base — the caller serves the rest from memory."""
        with self._lock:
            sealed = list(self._sealed)
            active_base = self._active_base
        if not sealed or offset >= active_base:
            return []
        i = bisect_right(sealed, offset, key=lambda s: s.base) - 1
        if i < 0:
            i = 0
        out: list = []
        interval = self.config.index_interval_bytes
        while i < len(sealed) and len(out) < max_count:
            seg = sealed[i]
            if offset < seg.end:
                records = seg.read(
                    max(offset, seg.base),
                    max_count - len(out),
                    self.topic,
                    self.partition,
                    interval,
                    self.counters,
                    cache=self._decode_cache,
                )
                out.extend(records)
                if records:
                    offset = records[-1].offset + 1
            i += 1
        return out

    def offset_for_time(self, timestamp: float) -> int | None:
        """Earliest sealed-segment offset appended at/after *timestamp*.

        Batch headers carry the flush time (``>=`` every contained
        record's append time), so segments/batches wholly older than
        *timestamp* are skipped from their headers alone; only the first
        candidate batch is decoded. ``None`` = nothing sealed qualifies
        (the caller continues the search in its in-memory tail).
        """
        with self._lock:
            sealed = list(self._sealed)
        for seg in sealed:
            if seg.last_write_ts < timestamp:
                continue
            view = seg.open_map()
            for info in scan_batches(view, 0, seg.size):
                if info.write_ts < timestamp:
                    continue
                for record in decode_batch(view, info, self.topic, self.partition):
                    if record.append_ts >= timestamp:
                        return record.offset
        return None

    # -- truncation (follower resync) ---------------------------------------

    def truncate_to(self, offset: int):
        """Drop everything at/above *offset* from disk.

        Returns ``None`` when the cut stayed at/above the active
        segment's base (the caller's in-memory tail truncation
        suffices), or the list of surviving records below the cut when
        sealed segments had to be unwound — the caller replaces its
        in-memory tail with them, since the unwound segment becomes the
        new active one. Batches straddling the cut are rewritten from
        their surviving prefix (re-encoded and re-flushed), reusing the
        append primitives.
        """
        with self._io_lock:
            self._flush_io()
            with self._lock:
                self._raise_if_unusable()
                if offset >= self._end_offset:
                    return None
                self.counters["truncations"] += 1
                active_base = self._active_base
                for state in self._mirror.values():
                    state.recent = deque(
                        (entry for entry in state.recent if entry[1] < offset),
                        maxlen=_DEDUP_WINDOW,
                    )
            if offset >= active_base:
                self._truncate_active_io(offset)
                return None
            return self._unwind_sealed_io(offset)

    def _truncate_active_io(self, offset: int) -> None:
        # Find the first batch at/after the cut; the file is truncated at
        # its position. A straddling batch (base < offset < end) is
        # decoded from disk and its surviving prefix re-appended.
        with self._lock:
            batches = self._active_batches
            cut_pos = self._active_size
            keep: list = []
            straddler = None
            for j, (base, pos) in enumerate(batches):
                batch_end = (
                    batches[j + 1][1] if j + 1 < len(batches) else self._active_size
                )
                if base >= offset:
                    cut_pos = min(cut_pos, pos)
                    break
                next_base = (
                    batches[j + 1][0] if j + 1 < len(batches) else self._flushed_offset
                )
                if next_base > offset:
                    straddler = (pos, batch_end - pos, base)
                    cut_pos = pos
                    break
                keep.append((base, pos))
            survivors: list = []
            if straddler is not None:
                pos, length, base = straddler
                data = os.pread(self._active_fd, length, pos)
                info = read_batch_info(data, 0, length)
                if info is not None:
                    survivors = decode_batch(
                        data, info, self.topic, self.partition, copy=True
                    )[: offset - base]
            os.ftruncate(self._active_fd, cut_pos)
            self._active_size = cut_pos
            self._active_batches = keep
            # Without a straddler the cut lands on a batch boundary, so
            # exactly [base, offset) survives; with one, the file was cut
            # below its surviving prefix, which is re-appended below.
            new_end = straddler[2] if straddler is not None else min(
                self._flushed_offset, offset
            )
            self._flushed_offset = new_end
            self._end_offset = new_end
        if survivors:
            self.append_batch(survivors)
            self._flush_io()

    def _unwind_sealed_io(self, offset: int) -> list:
        # Remove the active file and every sealed segment at/above the
        # cut; the segment containing the cut is replayed into a fresh
        # active segment (its surviving records re-encoded), putting the
        # store back in the "tail lives in the active segment" invariant.
        # The unwound segment's base offset will be written again with
        # different content, so cached decodes must not outlive the cut.
        self._decode_cache.clear()
        os.close(self._active_fd)
        try:
            os.unlink(self._active_path)
        except OSError:
            pass
        with self._lock:
            keep: list = []
            victims: list = []
            reopen = None
            for seg in self._sealed:
                if seg.base >= offset:
                    victims.append(seg)
                elif seg.end > offset:
                    reopen = seg
                else:
                    keep.append(seg)
            self._sealed = keep
        survivors: list = []
        if reopen is not None:
            view = reopen.open_map()
            for info in scan_batches(view, 0, reopen.size):
                if info.base_offset >= offset:
                    break
                batch = decode_batch(view, info, self.topic, self.partition, copy=True)
                survivors.extend(batch[: max(0, offset - info.base_offset)])
            victims.append(reopen)
            new_base = reopen.base
        else:
            # The cut lands exactly on a segment boundary.
            new_base = keep[-1].end if keep else offset
        new_path = os.path.join(self.directory, segment_filename(new_base))
        for seg in victims:
            seg.close()
            for path in (seg.path, seg.index_path):
                if path != new_path:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
        fd = os.open(new_path, os.O_CREAT | os.O_RDWR | os.O_APPEND, 0o644)
        os.ftruncate(fd, 0)
        with self._lock:
            self._active_fd = fd
            self._active_path = new_path
            self._active_base = new_base
            self._active_size = 0
            self._active_batches = []
            self._active_opened = time.monotonic()
            self._flushed_offset = new_base
            self._end_offset = new_base
            self._base_offset = keep[0].base if keep else new_base
        if survivors:
            self.append_batch(survivors)
            self._flush_io()
        return survivors

    # -- retention + tiered offload -----------------------------------------

    def enforce_retention(self, retention_bytes: int, retention_seconds: float) -> tuple:
        """Drop (or offload) whole sealed segments per the retention caps.

        The active segment is never dropped (Kafka's rule); granularity
        is a whole segment, so size retention can overshoot by at most
        one segment. Returns ``(bytes_dropped, new_base_offset)``.
        """
        if not retention_bytes and not retention_seconds:
            return 0, self.earliest_offset
        victims: list = []
        with self._lock:
            if not self._sealed:
                return 0, self._base_offset
            total = (
                sum(seg.size for seg in self._sealed)
                + self._active_size
                + self._pending_bytes
            )
            cutoff = (
                time.monotonic() - retention_seconds if retention_seconds > 0 else None
            )
            while self._sealed:
                head = self._sealed[0]
                if retention_bytes > 0 and total > retention_bytes:
                    pass
                elif cutoff is not None and head.last_write_ts < cutoff:
                    pass
                else:
                    break
                victims.append(head)
                self._sealed.pop(0)
                total -= head.size
            self._base_offset = (
                self._sealed[0].base if self._sealed else self._active_base
            )
            new_base = self._base_offset
        dropped = 0
        for seg in victims:
            callback = self.on_evict
            if callback is not None:
                try:
                    callback(self.topic, self.partition, seg.base, seg.end,
                             seg.path, seg.size)
                    self.counters["segments_offloaded"] += 1
                    journal = self.journal
                    if journal is not None:
                        journal.emit(
                            "segment_offloaded",
                            topic=self.topic,
                            partition=self.partition,
                            base=seg.base,
                            end=seg.end,
                            bytes=seg.size,
                        )
                except Exception:
                    pass  # offload is best-effort; retention proceeds
            seg.close()
            for path in (seg.path, seg.index_path):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            dropped += seg.size
            self.counters["segments_deleted"] += 1
        if victims:
            # Cached records pin their segment's mapping via zero-copy
            # views; drop them so evicted files can actually unmap.
            self._decode_cache.clear()
        return dropped, new_base

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush, snapshot, and release every file handle and mapping."""
        with self._io_lock:
            try:
                self._flush_io()
            except StorageError:
                pass
            with self._lock:
                if self._closed:
                    return
                self._closed = True
                snapshot = self._mirror_snapshot_locked()
                as_of = self._flushed_offset
                sealed = list(self._sealed)
                fd = self._active_fd
                self._flush_cond.notify_all()
            if self._failed is None:
                self._write_snapshot(snapshot, as_of)
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
            self._decode_cache.clear()
            for seg in sealed:
                seg.close()

    @property
    def pending_bytes(self) -> int:
        """Bytes appended but not yet durable (awaiting group commit)."""
        with self._lock:
            return self._pending_bytes

    def stats(self) -> dict:
        with self._lock:
            return {
                "topic": self.topic,
                "partition": self.partition,
                "base_offset": self._base_offset,
                "next_offset": self._end_offset,
                "flushed_offset": self._flushed_offset,
                "active_base": self._active_base,
                "active_bytes": self._active_size,
                "pending_bytes": self._pending_bytes,
                "sealed_segments": len(self._sealed),
                **self.counters,
            }

    def __repr__(self) -> str:
        return (
            f"SegmentStore({self.topic}/{self.partition}, "
            f"dir={self.directory!r}, segments={len(self._sealed)}+active)"
        )


class LogStorageManager:
    """Per-broker registry of stores sharing one group-commit flusher.

    The broker creates one manager per ``log_dir``; every partition's
    store lives under ``{root}/{topic}-{partition}/`` and shares the
    manager's flusher thread, so the whole broker pays one flush loop.
    """

    def __init__(self, root: str, config: StorageConfig | None = None) -> None:
        self.root = root
        self.config = config or StorageConfig()
        self.flusher = GroupCommitFlusher(self.config.flush_ms)
        # Observability hooks inherited by every store opened after they
        # are set (duck-typed; see SegmentStore.__init__). The owning
        # broker installs them before any topic is created, so even
        # boot-recovery stores get instrumented.
        self.journal = None
        self.registry = None
        self._stores: dict[tuple, SegmentStore] = {}
        self._lock = threading.Lock()

    def open(self, topic: str, partition: int) -> SegmentStore:
        key = (topic, int(partition))
        with self._lock:
            store = self._stores.get(key)
            if store is None:
                store = SegmentStore(
                    os.path.join(self.root, f"{topic}-{partition}"),
                    topic,
                    partition,
                    config=self.config,
                    flusher=self.flusher,
                    journal=self.journal,
                    registry=self.registry,
                )
                self._stores[key] = store
            return store

    def drop_topic(self, topic: str) -> None:
        """Close (but keep on disk) every store of *topic*."""
        with self._lock:
            victims = [s for (t, _), s in self._stores.items() if t == topic]
            self._stores = {k: s for k, s in self._stores.items() if k[0] != topic}
        for store in victims:
            store.close()

    def stats(self) -> dict:
        with self._lock:
            stores = list(self._stores.values())
        totals: dict = {}
        for store in stores:
            for key, value in store.counters.items():
                totals[key] = totals.get(key, 0) + value
        totals["stores"] = len(stores)
        totals["size_bytes"] = sum(s.size_bytes for s in stores)
        totals["pending_bytes"] = sum(s.pending_bytes for s in stores)
        return totals

    def close(self) -> None:
        with self._lock:
            stores = list(self._stores.values())
            self._stores.clear()
        for store in stores:
            store.close()
        self.flusher.stop()
