"""Tiered retention: evicted segments offload to the pilot-data layer.

The continuum story from the paper: RasPi-class edge brokers keep a
small hot log; when local retention evicts a sealed segment, the whole
immutable file ships to a cloud-tier storage site as one pilot-data
unit before it is unlinked. The broker's disk footprint stays bounded
by ``retention_bytes`` while the full history accumulates at the
cloud site (and can be fanned out further with
:meth:`~repro.pilotdata.service.PilotDataService.replicate`).
"""

from __future__ import annotations

import os
import threading

import numpy as np


class PilotDataOffloader:
    """Segment-eviction callback shipping files into a PilotDataService.

    Plug an instance into ``SegmentStore.on_evict`` (or pass it to the
    broker's storage wiring). Each evicted segment becomes one data unit
    named ``{prefix}/{topic}-{partition}/{base_offset}`` whose single
    block encodes the raw segment bytes (data units carry 2-D float64
    blocks, so the file is shipped as a ``(1, size)`` array of byte
    values); :meth:`segment_bytes` turns a retrieved unit back into the
    original file, still scannable with
    :mod:`repro.broker.storage.segment`.
    """

    def __init__(self, service, site: str, prefix: str = "segments") -> None:
        self.service = service
        self.site = site
        self.prefix = prefix
        self.offloaded_segments = 0
        self.offloaded_bytes = 0
        self._lock = threading.Lock()

    def __call__(self, topic: str, partition: int, base: int, end: int,
                 path: str, size: int) -> None:
        with open(path, "rb") as fh:
            data = fh.read()
        name = f"{self.prefix}/{topic}-{partition}/{base:020d}"
        block = np.frombuffer(data, dtype=np.uint8).astype(np.float64).reshape(1, -1)
        self.service.put(
            name,
            [block],
            site=self.site,
            metadata={
                "topic": topic,
                "partition": partition,
                "base_offset": base,
                "end_offset": end,
                "segment_bytes": size,
                "source_file": os.path.basename(path),
            },
        )
        with self._lock:
            self.offloaded_segments += 1
            self.offloaded_bytes += size

    @staticmethod
    def segment_bytes(unit) -> bytes:
        """Decode an offloaded unit back into the original segment file."""
        return np.asarray(unit.blocks[0][0], dtype=np.uint8).tobytes()

    def stats(self) -> dict:
        with self._lock:
            return {
                "site": self.site,
                "offloaded_segments": self.offloaded_segments,
                "offloaded_bytes": self.offloaded_bytes,
            }
