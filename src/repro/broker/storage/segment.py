"""On-disk segment format: length-prefixed, CRC-guarded record batches.

A segment file is a flat concatenation of *batches*. Each batch is::

    [4B body length][4B CRC32 of body][body]

and the body is::

    [Q base_offset][I count][i producer_id][I producer_epoch]
    [q base_sequence][d write_ts]
    count * ([I value_len][i key_len][I headers_len][d produce_ts]
             [d append_ts][value][key][headers-json])

``producer_id``/``base_sequence`` are ``-1`` when the batch was not an
idempotent produce (e.g. a follower-side replica install); storing them
per batch lets recovery rebuild the producer dedup windows by replaying
the active segment, without a separate transaction log.

The length prefix makes a segment scannable without an index; the CRC
makes a *torn tail* (power loss mid-``write``) detectable: recovery
truncates the file at the first batch whose length prefix runs past EOF
or whose CRC does not match, exactly the LogCabin/Kafka rule.

A sealed segment gets a *sparse index* file mapping offsets to byte
positions roughly every ``index_interval_bytes``; a lookup binary-
searches the index and scans forward over at most one interval of
batch headers. The index is a pure cache — if it is missing or
unreadable it is rebuilt from a segment scan.

Everything here operates on buffers (``bytes``, ``mmap``,
``memoryview``) and stays allocation-light: decoding a batch from an
``mmap`` yields records whose values are ``memoryview`` slices of the
page cache — zero copies until the consumer touches the bytes.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import NamedTuple

from repro.broker.message import Record

#: [body_len][crc32]
BATCH_HEADER = struct.Struct(">II")
#: [base_offset][count][producer_id][producer_epoch][base_sequence][write_ts]
BODY_HEADER = struct.Struct(">QIiIqd")
#: [value_len][key_len][headers_len][produce_ts][append_ts]
RECORD_HEADER = struct.Struct(">IiIdd")

#: Segment data files are named by their base offset, zero-padded so
#: lexicographic order is offset order.
LOG_SUFFIX = ".log"
INDEX_SUFFIX = ".index"
INDEX_MAGIC = b"RIDX1\n"
#: One sparse-index entry: [offset][file position].
INDEX_ENTRY = struct.Struct(">QQ")


def segment_filename(base_offset: int) -> str:
    return f"{base_offset:020d}{LOG_SUFFIX}"


class BatchInfo(NamedTuple):
    """Location + header of one batch inside a segment buffer."""

    pos: int  # file position of the batch header
    body_start: int
    body_len: int
    base_offset: int
    count: int
    producer_id: int  # -1 = non-idempotent batch
    producer_epoch: int
    base_sequence: int  # -1 = non-idempotent batch
    write_ts: float

    @property
    def end_offset(self) -> int:
        return self.base_offset + self.count

    @property
    def end_pos(self) -> int:
        return self.body_start + self.body_len


def encode_batch(
    records,
    producer_id: int | None = None,
    producer_epoch: int = 0,
    base_sequence: int | None = None,
    write_ts: float = 0.0,
) -> tuple[list, int]:
    """Encode *records* into a batch as a buffer list (writev-ready).

    Returns ``(buffers, total_bytes)``. Record values are referenced,
    not copied — the produce path hands the same buffers straight to
    ``writev``, so the only per-byte work before the disk is the CRC.
    """
    n = len(records)
    head = BODY_HEADER.pack(
        records[0].offset,
        n,
        -1 if producer_id is None else int(producer_id),
        int(producer_epoch),
        -1 if base_sequence is None else int(base_sequence),
        write_ts,
    )
    body: list = [head]
    add = body.append
    # CRC and length accumulate inline as buffers are gathered — one
    # pass over the batch, no second walk of the buffer list. Hot
    # produce path: bind the per-record callables once.
    crc32 = zlib.crc32
    pack = RECORD_HEADER.pack
    header_size = RECORD_HEADER.size
    crc = crc32(head)
    body_len = len(head)
    for record in records:
        value = record.value
        key = record.key
        headers = record.headers
        header_bytes = (
            json.dumps(headers, separators=(",", ":")).encode("utf-8")
            if headers
            else b""
        )
        value_len = len(value)
        key_len = -1 if key is None else len(key)
        headers_len = len(header_bytes)
        packed = pack(value_len, key_len, headers_len,
                      record.produce_ts, record.append_ts)
        add(packed)
        crc = crc32(packed, crc)
        body_len += header_size + value_len + headers_len
        if value_len:
            add(value)
            crc = crc32(value, crc)
        if key:
            add(key)
            crc = crc32(key, crc)
            body_len += key_len
        if header_bytes:
            add(header_bytes)
            crc = crc32(header_bytes, crc)
    body.insert(0, BATCH_HEADER.pack(body_len, crc))
    return body, BATCH_HEADER.size + body_len


def encoded_batch_size(records) -> int:
    """Exact on-disk size :func:`encode_batch` would produce, without
    packing or checksumming anything.

    The produce hot path uses this to account for a batch (group-commit
    window sizing, ``size_bytes``) while deferring the actual encode —
    headers, CRC and all — to the flusher thread, off the ack critical
    path.
    """
    size = BATCH_HEADER.size + BODY_HEADER.size
    header_size = RECORD_HEADER.size
    for record in records:
        size += header_size + len(record.value)
        key = record.key
        if key:
            size += len(key)
        headers = record.headers
        if headers:
            size += len(
                json.dumps(headers, separators=(",", ":")).encode("utf-8")
            )
    return size


def read_batch_info(buf, pos: int, end: int, verify_crc: bool = False) -> BatchInfo | None:
    """Parse the batch header at *pos*; ``None`` on a torn/corrupt batch.

    ``None`` means "the segment ends here": a truncated length prefix, a
    body running past *end*, or (with *verify_crc*) a CRC mismatch — all
    the shapes a crash mid-write can leave behind.
    """
    if pos + BATCH_HEADER.size > end:
        return None
    body_len, crc = BATCH_HEADER.unpack_from(buf, pos)
    body_start = pos + BATCH_HEADER.size
    if body_len < BODY_HEADER.size or body_start + body_len > end:
        return None
    if verify_crc and zlib.crc32(buf[body_start : body_start + body_len]) != crc:
        return None
    base_offset, count, pid, epoch, base_seq, write_ts = BODY_HEADER.unpack_from(
        buf, body_start
    )
    return BatchInfo(
        pos, body_start, body_len, base_offset, count, pid, epoch, base_seq, write_ts
    )


def scan_batches(buf, start: int, end: int, verify_crc: bool = False):
    """Yield every valid :class:`BatchInfo` in ``buf[start:end]`` in order.

    Stops silently at the first invalid batch — the caller learns the
    valid prefix length from the last yielded batch's ``end_pos``.
    """
    pos = start
    while True:
        info = read_batch_info(buf, pos, end, verify_crc=verify_crc)
        if info is None:
            return
        yield info
        pos = info.end_pos


def decode_batch(buf, info: BatchInfo, topic: str, partition: int, copy: bool = False):
    """Decode one batch into :class:`Record` objects.

    With ``copy=False`` and a ``memoryview``/``mmap`` buffer, record
    values are zero-copy slices of *buf* — they stay valid exactly as
    long as the underlying mapping does (the mapping cannot be closed
    while views on it are alive, so this is safe, merely pins pages).
    Keys are always materialized as ``bytes``: they are tiny and used as
    dict keys downstream (``memoryview`` is unhashable).
    """
    pos = info.body_start + BODY_HEADER.size
    offset = info.base_offset
    out = []
    add = out.append
    for _ in range(info.count):
        value_len, key_len, headers_len, produce_ts, append_ts = RECORD_HEADER.unpack_from(
            buf, pos
        )
        pos += RECORD_HEADER.size
        value = buf[pos : pos + value_len]
        if copy and not isinstance(value, bytes):
            value = bytes(value)
        pos += value_len
        if key_len < 0:
            key = None
        else:
            key = bytes(buf[pos : pos + key_len])
            pos += key_len
        if headers_len:
            headers = json.loads(bytes(buf[pos : pos + headers_len]))
            pos += headers_len
        else:
            headers = {}
        add(Record(topic, partition, offset, value, key, headers, produce_ts, append_ts))
        offset += 1
    return out


# -- sparse index ------------------------------------------------------------


def build_sparse_index(batch_positions, interval_bytes: int) -> list:
    """Thin ``[(base_offset, pos), ...]`` down to ~one entry per interval.

    The first batch is always indexed so a lookup below the second entry
    still lands inside the segment instead of scanning from position 0
    of nothing.
    """
    entries = []
    last_pos = None
    for base_offset, pos in batch_positions:
        if last_pos is None or pos - last_pos >= interval_bytes:
            entries.append((base_offset, pos))
            last_pos = pos
    return entries


def write_index_file(path: str, entries) -> None:
    parts = [INDEX_MAGIC]
    parts.extend(INDEX_ENTRY.pack(offset, pos) for offset, pos in entries)
    data = b"".join(parts)
    with open(path, "wb") as fh:
        fh.write(data)


def read_index_file(path: str) -> list | None:
    """Entries from an index file, or ``None`` when missing/corrupt."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        return None
    if not data.startswith(INDEX_MAGIC):
        return None
    body = data[len(INDEX_MAGIC) :]
    if len(body) % INDEX_ENTRY.size:
        return None
    return [
        INDEX_ENTRY.unpack_from(body, i)
        for i in range(0, len(body), INDEX_ENTRY.size)
    ]
