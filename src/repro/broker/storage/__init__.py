"""Durable segment-backed storage for partition logs.

See :mod:`repro.broker.storage.log` for the engine (group-commit
flusher + mmap segment reads + CRC-truncated recovery) and
:mod:`repro.broker.storage.segment` for the on-disk batch format.
"""

from repro.broker.storage.log import (
    GroupCommitFlusher,
    LogStorageManager,
    RecoveryResult,
    SegmentStore,
    StorageConfig,
    StorageError,
    TornWriteError,
)
from repro.broker.storage.segment import (
    decode_batch,
    encode_batch,
    scan_batches,
    segment_filename,
)
from repro.broker.storage.tiering import PilotDataOffloader

__all__ = [
    "GroupCommitFlusher",
    "LogStorageManager",
    "PilotDataOffloader",
    "RecoveryResult",
    "SegmentStore",
    "StorageConfig",
    "StorageError",
    "TornWriteError",
    "decode_batch",
    "encode_batch",
    "scan_batches",
    "segment_filename",
]
