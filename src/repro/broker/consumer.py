"""Consumer client: group membership, polling, offset management.

A consumer either subscribes through a consumer group (partitions are
assigned by the coordinator and rebalanced as members come and go) or is
manually assigned partitions with :meth:`assign` — both modes exist in
Kafka and both are used by the pipeline (grouped consumers for the
processing tier, manual assignment for monitoring taps).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from repro.broker.broker import Broker
from repro.broker.errors import BrokerError, RebalanceInProgressError, UnknownMemberError
from repro.broker.group import AssignmentStrategy
from repro.broker.message import Record
from repro.broker.serde import BytesSerde, Serde
from repro.util.ids import new_id
from repro.util.validation import ValidationError, check_non_negative, check_positive


class _Prefetcher:
    """Background fetchers that keep a bounded buffer per partition.

    One daemon thread per assigned partition issues long-poll fetches
    (overlapping network wait across partitions and with the consumer's
    processing), bounded by ``batches * max_records`` records per
    partition and ``max_buffer_bytes`` across all buffers.

    Invariant: a partition's buffer is contiguous and starts exactly at
    the consumer's next offset. Anything that breaks it — a seek, a
    rebalance resetting positions to committed offsets, a revoked
    partition — evicts the buffer (counted in ``prefetch_evictions``),
    and an in-flight fetch that raced the reset is detected by its start
    offset no longer matching ``_fetch_pos`` and dropped. Buffered
    records are therefore never delivered across an assignment boundary.
    """

    def __init__(
        self,
        broker,
        batches: int,
        max_buffer_bytes: int,
        min_bytes: int,
        max_wait_s: float,
        max_records: int = 64,
    ) -> None:
        self._broker = broker
        self._batches = max(1, int(batches))
        self._max_records = max(1, int(max_records))
        self._max_buffer_bytes = int(max_buffer_bytes)
        self._min_bytes = max(1, int(min_bytes))
        self._max_wait_s = max(0.01, float(max_wait_s))
        self._cond = threading.Condition()
        self._buffers: dict[tuple, deque] = {}
        self._buffer_bytes: dict[tuple, int] = {}
        self._fetch_pos: dict[tuple, int] = {}
        self._threads: dict[tuple, threading.Thread] = {}
        self._buffered_bytes = 0
        #: Running estimate used to size fetches against the byte budget
        #: before the records (and their sizes) are in hand.
        self._avg_record_bytes = 0.0
        self._stopped = False
        # Telemetry (folded into Consumer.stats / pipeline counters).
        self.prefetch_hits = 0
        self.prefetch_evictions = 0
        self.fetch_errors = 0
        self.fetches_in_flight = 0
        self.max_fetches_in_flight = 0

    @property
    def buffered_records(self) -> int:
        with self._cond:
            return sum(len(b) for b in self._buffers.values())

    def sync(
        self,
        assignment: list[tuple],
        positions: dict[tuple, int],
        max_records: int | None = None,
    ) -> None:
        """Reconcile fetch threads and buffers with the consumer state."""
        with self._cond:
            if self._stopped:
                return
            if max_records is not None:
                # Track the caller's poll batch size so "batches" of
                # prefetch depth mean batches the consumer actually takes.
                self._max_records = max(1, int(max_records))
            current = set(assignment)
            # Revoked partitions: drop buffers and signal their threads
            # (each thread exits when it is no longer the registered one).
            for tp in [t for t in self._threads if t not in current]:
                del self._threads[tp]
            for tp in [t for t in self._fetch_pos if t not in current]:
                self._evict_locked(tp)
                del self._fetch_pos[tp]
            for tp in current:
                pos = positions[tp]
                buf = self._buffers.get(tp)
                if buf:
                    if buf[0].offset != pos:
                        # Seek or position reset: buffered range is stale.
                        self._evict_locked(tp)
                        self._fetch_pos[tp] = pos
                elif self._fetch_pos.get(tp, pos) != pos:
                    # Empty buffer but diverged fetch cursor (seek raced
                    # an in-flight fetch): resetting it also invalidates
                    # that fetch's results on arrival.
                    self._fetch_pos[tp] = pos
                thread = self._threads.get(tp)
                if thread is None or not thread.is_alive():
                    self._fetch_pos.setdefault(tp, pos)
                    thread = threading.Thread(
                        target=self._run,
                        args=(tp,),
                        name=f"prefetch-{tp[0]}-{tp[1]}",
                        daemon=True,
                    )
                    self._threads[tp] = thread
                    thread.start()

    def take(self, tp: tuple, position: int, budget: int) -> list:
        """Pop up to *budget* buffered records starting at *position*."""
        with self._cond:
            buf = self._buffers.get(tp)
            if not buf or buf[0].offset != position:
                return []
            over_before = self._buffered_bytes >= self._max_buffer_bytes
            if len(buf) <= int(budget):
                # Whole-buffer fast path: hand the deque over in one
                # move and settle the byte accounting from the cached
                # per-partition total.
                out = list(buf)
                buf.clear()
                taken = self._buffer_bytes.get(tp, 0)
                self._buffer_bytes[tp] = 0
            else:
                out = [buf.popleft() for _ in range(int(budget))]
                taken = sum(r.size for r in out)
                self._buffer_bytes[tp] -= taken
            self._buffered_bytes -= taken
            self.prefetch_hits += len(out)
            # Wake parked fetchers only when the buffer actually needs a
            # refill (below one poll batch) or the byte budget was the
            # thing parking them. Waking on every take makes the fetcher
            # ping-pong one batch per poll; letting the buffer drain
            # first batches refills into one headroom-sized fetch and
            # one thread handoff per buffer, which is what keeps the
            # in-proc (zero-RTT) overhead low.
            if len(buf) < self._max_records or over_before:
                self._cond.notify_all()
            return out

    def wait_data(self, timeout: float) -> None:
        """Block until a fetch thread lands records (or *timeout*)."""
        with self._cond:
            self._cond.wait(timeout)

    def _evict_locked(self, tp: tuple) -> None:
        buf = self._buffers.pop(tp, None)
        if buf:
            self.prefetch_evictions += len(buf)
            self._buffered_bytes -= self._buffer_bytes.get(tp, 0)
            self._cond.notify_all()
        self._buffer_bytes.pop(tp, None)

    def _run(self, tp: tuple) -> None:
        me = threading.current_thread()
        while True:
            with self._cond:
                while True:
                    if self._stopped or self._threads.get(tp) is not me:
                        return
                    buf = self._buffers.get(tp)
                    full = (
                        buf is not None
                        and len(buf) >= self._batches * self._max_records
                    ) or self._buffered_bytes >= self._max_buffer_bytes
                    if not full:
                        break
                    # Byte-budget backpressure: park until poll drains.
                    self._cond.wait(0.1)
                offset = self._fetch_pos[tp]
                # Size the fetch to the full remaining headroom, not one
                # poll batch: a consumer that drained the buffer gets it
                # refilled in one broker round trip (and one thread
                # handoff) instead of batch-by-batch ping-pong. The byte
                # budget is enforced predictively through the running
                # average record size; until one is known, probe with a
                # single batch.
                buf = self._buffers.get(tp)
                want = self._batches * self._max_records - (
                    len(buf) if buf is not None else 0
                )
                want = max(1, want)
                if self._avg_record_bytes > 0:
                    byte_room = self._max_buffer_bytes - self._buffered_bytes
                    want = min(
                        want, max(1, int(byte_room / self._avg_record_bytes))
                    )
                else:
                    want = min(want, self._max_records)
                self.fetches_in_flight += 1
                if self.fetches_in_flight > self.max_fetches_in_flight:
                    self.max_fetches_in_flight = self.fetches_in_flight
            batch, failed = [], False
            try:
                batch = self._broker.fetch(
                    tp[0],
                    tp[1],
                    offset,
                    max_records=want,
                    timeout=self._max_wait_s,
                    min_bytes=self._min_bytes,
                )
            except BrokerError:
                failed = True
            except (ConnectionError, OSError):
                failed = True
            finally:
                with self._cond:
                    self.fetches_in_flight -= 1
            with self._cond:
                if self._stopped or self._threads.get(tp) is not me:
                    if batch:
                        self.prefetch_evictions += len(batch)
                    return
                if self._fetch_pos.get(tp) != offset:
                    # A seek/rebalance moved the cursor while this fetch
                    # was in flight; its records are stale.
                    if batch:
                        self.prefetch_evictions += len(batch)
                    continue
                if failed:
                    self.fetch_errors += 1
                    # Transient (reconnecting transport, truncated offset
                    # being re-resolved, or a replicated partition mid-
                    # failover — the cluster client re-routes to the new
                    # leader underneath us): back off briefly, then retry.
                    self._cond.wait(0.05)
                    continue
                if batch:
                    batch_bytes = sum(r.size for r in batch)
                    self._buffers.setdefault(tp, deque()).extend(batch)
                    self._buffer_bytes[tp] = (
                        self._buffer_bytes.get(tp, 0) + batch_bytes
                    )
                    self._buffered_bytes += batch_bytes
                    self._avg_record_bytes = batch_bytes / len(batch)
                    self._fetch_pos[tp] = batch[-1].offset + 1
                    self._cond.notify_all()

    def close(self) -> None:
        """Stop and join every fetch thread; drop all buffers."""
        with self._cond:
            self._stopped = True
            threads = list(self._threads.values())
            self._threads.clear()
            for tp in list(self._buffers):
                self._evict_locked(tp)
            self._cond.notify_all()
        for thread in threads:
            thread.join(timeout=self._max_wait_s + 1.0)

    def stats(self) -> dict:
        with self._cond:
            return {
                "prefetch_hits": self.prefetch_hits,
                "prefetch_evictions": self.prefetch_evictions,
                "prefetch_buffered_records": sum(
                    len(b) for b in self._buffers.values()
                ),
                "prefetch_buffered_bytes": self._buffered_bytes,
                "prefetch_fetch_errors": self.fetch_errors,
                "max_fetches_in_flight": self.max_fetches_in_flight,
            }


class Consumer:
    """Client for fetching records from a broker.

    Parameters
    ----------
    broker:
        The broker to consume from.
    group_id:
        Consumer-group name; ``None`` for standalone (manual-assign) use.
    serde:
        Value deserializer applied in :meth:`poll`.
    auto_offset_reset:
        Where to start when the group has no committed offset:
        ``"earliest"`` or ``"latest"``.
    session_timeout_ms:
        Failure-detection window registered with the group coordinator:
        if this consumer stops heartbeating for longer, the coordinator
        evicts it and rebalances its partitions to the survivors.
        ``poll`` piggybacks a heartbeat every ``session_timeout/3``
        seconds, so any consumer that keeps polling stays alive. ``None``
        uses the coordinator's default; 0 disables eviction.
    fetch_prefetch_batches:
        When > 0, a background fetcher per assigned partition keeps up to
        this many batches (of ``poll``'s default batch size) buffered
        ahead of the consumer, overlapping fetch latency with processing.
        0 (the default) fetches synchronously inside ``poll``.
    fetch_max_buffer_bytes:
        Global byte budget across all prefetch buffers; fetchers park
        when it is reached (backpressure), resuming as ``poll`` drains.
    fetch_min_bytes / fetch_max_wait_ms:
        Long-poll fetch contract forwarded to the broker: a fetch waits
        server-side until *fetch_min_bytes* of payload is available or
        *fetch_max_wait_ms* elapses, instead of returning empty.
    """

    def __init__(
        self,
        broker: Broker | None = None,
        group_id: str | None = None,
        serde: Serde | None = None,
        auto_offset_reset: str = "earliest",
        client_id: str | None = None,
        session_timeout_ms: float | None = None,
        fetch_prefetch_batches: int = 0,
        fetch_max_buffer_bytes: int = 64 * 1024 * 1024,
        fetch_min_bytes: int = 1,
        fetch_max_wait_ms: float = 500.0,
        tracer=None,
        trace_site: str = "",
        bootstrap=None,
    ) -> None:
        if auto_offset_reset not in ("earliest", "latest"):
            raise ValidationError(
                f"auto_offset_reset must be 'earliest' or 'latest', got {auto_offset_reset!r}"
            )
        if session_timeout_ms is not None:
            check_non_negative("session_timeout_ms", session_timeout_ms)
        check_non_negative("fetch_prefetch_batches", fetch_prefetch_batches)
        check_positive("fetch_max_buffer_bytes", fetch_max_buffer_bytes)
        check_positive("fetch_min_bytes", fetch_min_bytes)
        check_non_negative("fetch_max_wait_ms", fetch_max_wait_ms)
        if (broker is None) == (bootstrap is None):
            raise ValidationError("provide exactly one of broker= or bootstrap=")
        # A bootstrap list connects to whatever answers first — a sharded
        # cluster or a plain single broker — and the consumer owns (and
        # closes) the resulting client handle.
        self._owns_broker = bootstrap is not None
        if bootstrap is not None:
            from repro.broker.cluster import connect_bootstrap

            broker = connect_bootstrap(bootstrap)
        self._broker = broker
        self._serde = serde or BytesSerde()
        self.group_id = group_id
        self.client_id = client_id or new_id("consumer")
        self._auto_offset_reset = auto_offset_reset
        self._subscribed_topics: list[str] = []
        self._strategy: AssignmentStrategy | None = None
        self._generation = -1
        self._assignment: list[tuple] = []
        #: (topic, partition) -> next offset to fetch
        self._positions: dict[tuple, int] = {}
        self._closed = False
        self.session_timeout_ms = session_timeout_ms
        self._last_heartbeat = 0.0
        # Consume-side metrics.
        self.records_consumed = 0
        self.bytes_consumed = 0
        self.heartbeats_sent = 0
        #: Times this consumer discovered it had been evicted (a missed
        #: session deadline) and had to re-join the group.
        self.evictions = 0
        self.rebalances = 0
        self.fetch_min_bytes = int(fetch_min_bytes)
        self.fetch_max_wait_ms = float(fetch_max_wait_ms)
        #: Optional :class:`repro.monitoring.Tracer`. When set, every
        #: delivered record that carries a propagated trace context gets a
        #: ``consumer.poll`` span — the downlink leg of the message tree.
        self._tracer = tracer
        self._trace_site = trace_site or (client_id or "consumer")
        self._prefetcher = (
            _Prefetcher(
                broker,
                batches=int(fetch_prefetch_batches),
                max_buffer_bytes=int(fetch_max_buffer_bytes),
                min_bytes=int(fetch_min_bytes),
                max_wait_s=float(fetch_max_wait_ms) / 1000.0,
            )
            if fetch_prefetch_batches > 0
            else None
        )

    # -- subscription -----------------------------------------------------

    def subscribe(self, topics: list[str] | str, strategy: AssignmentStrategy | None = None) -> None:
        """Join the consumer group for *topics*."""
        if self.group_id is None:
            raise ValidationError("subscribe() requires a group_id; use assign() instead")
        if isinstance(topics, str):
            topics = [topics]
        self._check_open()
        self._subscribed_topics = list(topics)
        self._strategy = strategy
        self._join()
        self._refresh_assignment()

    def _join(self) -> None:
        kwargs = {}
        if self.session_timeout_ms is not None:
            kwargs["session_timeout_ms"] = self.session_timeout_ms
        self._broker.coordinator.join(
            self.group_id,
            self.client_id,
            self._subscribed_topics,
            strategy=self._strategy,
            **kwargs,
        )
        self._last_heartbeat = time.monotonic()

    def assign(self, partitions: list[tuple]) -> None:
        """Manually assign ``(topic, partition)`` pairs (no group)."""
        self._check_open()
        if self.group_id is not None and self._subscribed_topics:
            raise ValidationError("cannot mix subscribe() and assign()")
        for topic, partition in partitions:
            # Validate against partition count (works for local topics
            # and remote topic proxies alike).
            n = self._broker.topic(topic).num_partitions
            if not 0 <= partition < n:
                from repro.broker.errors import UnknownPartitionError

                raise UnknownPartitionError(topic, partition)
        self._assignment = sorted(partitions)
        self._init_positions()

    def _refresh_assignment(self) -> None:
        generation, assignment = self._broker.coordinator.assignment(
            self.group_id, self.client_id
        )
        if generation != self._generation:
            if self._generation >= 0:
                self.rebalances += 1
            self._generation = generation
            self._assignment = assignment
            self._init_positions()

    def _heartbeat_if_due(self) -> None:
        """Piggyback a heartbeat on poll; re-join if we were evicted.

        Heartbeats go out every third of the session timeout (Kafka's
        default ratio). A heartbeat rejected with
        :class:`UnknownMemberError` means the coordinator already evicted
        us — our assignment is void, so re-join and raise
        :class:`RebalanceInProgressError` so the caller knows records may
        have been handed to another member.
        """
        timeout_ms = self.session_timeout_ms
        if not timeout_ms:
            # No session timeout: membership never expires, but still
            # send an occasional lease refresh when the coordinator has a
            # group-level timeout configured.
            coordinator_default = getattr(
                self._broker.coordinator, "session_timeout_ms", 0.0
            )
            if not coordinator_default:
                return
            timeout_ms = coordinator_default
        interval = timeout_ms / 3000.0
        now = time.monotonic()
        if now - self._last_heartbeat < interval:
            return
        try:
            self._broker.coordinator.heartbeat(self.group_id, self.client_id)
            self.heartbeats_sent += 1
            self._last_heartbeat = now
        except UnknownMemberError:
            self.evictions += 1
            self._join()
            self._refresh_assignment()
            raise RebalanceInProgressError(
                f"consumer {self.client_id!r} was evicted from group "
                f"{self.group_id!r} and re-joined"
            ) from None

    def _init_positions(self) -> None:
        positions: dict[tuple, int] = {}
        for tp in self._assignment:
            if tp in self._positions:
                positions[tp] = self._positions[tp]
                continue
            committed = (
                self._broker.committed_offset(self.group_id, *tp)
                if self.group_id
                else None
            )
            if committed is not None:
                positions[tp] = committed
            elif self._auto_offset_reset == "earliest":
                positions[tp] = self._broker.earliest_offset(*tp)
            else:
                positions[tp] = self._broker.latest_offset(*tp)
        self._positions = positions

    @property
    def assignment(self) -> list[tuple]:
        return list(self._assignment)

    def position(self, topic: str, partition: int) -> int | None:
        return self._positions.get((topic, partition))

    def seek(self, topic: str, partition: int, offset: int) -> None:
        tp = (topic, partition)
        if tp not in self._positions:
            raise ValidationError(f"{tp} is not assigned to this consumer")
        self._positions[tp] = int(offset)

    # -- polling ------------------------------------------------------------

    def poll(self, max_records: int = 64, timeout: float = 0.0) -> list[Record]:
        """Fetch up to *max_records* across assigned partitions.

        Returns raw :class:`Record` objects; use :meth:`poll_values` to
        get deserialized payloads. Blocks up to *timeout* seconds when no
        data is available on any partition.
        """
        check_positive("max_records", max_records)
        self._check_open()
        if self.group_id is not None and self._subscribed_topics:
            try:
                self._heartbeat_if_due()
            except RebalanceInProgressError:
                # Evicted and re-joined: the refreshed assignment is
                # already in place, but this poll round returns empty so
                # the caller observes the boundary (positions were reset
                # to committed offsets).
                return []
            # Eager rebalance check, as Kafka consumers do on poll().
            current = self._broker.coordinator.generation(self.group_id)
            if current != self._generation:
                self._refresh_assignment()
        if not self._assignment:
            return []

        if self._prefetcher is not None:
            # Reconcile fetcher threads/buffers with assignment and
            # positions before reading: this is where seeks, rebalances
            # and revocations invalidate buffered records.
            self._prefetcher.sync(self._assignment, self._positions, int(max_records))
        out = self._fetch_ready(int(max_records))
        if out or timeout <= 0:
            return self._account(out)
        if self._prefetcher is not None:
            # Block on the prefetcher's condition; fetch threads notify
            # as soon as any partition's buffer gains records.
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._prefetcher.wait_data(remaining)
                out = self._fetch_ready(int(max_records))
                if out:
                    return self._account(out)
        # Blocking pass. A single assigned partition can block directly
        # inside that partition's fetch (works locally and over the
        # wire); with several partitions we must wake on data arriving on
        # *any* of them — waiting on only the first would leave records
        # landing on the others stuck for the full timeout.
        if len(self._assignment) == 1:
            tp = self._assignment[0]
            batch = self._broker.fetch(
                *tp, self._positions[tp], max_records=int(max_records), timeout=timeout
            )
            if batch:
                self._positions[tp] = batch[-1].offset + 1
            return self._account(batch)
        logs = self._partition_logs()
        if logs is not None:
            return self._account(
                self._poll_blocking_local(logs, int(max_records), timeout)
            )
        return self._account(self._poll_blocking_sliced(int(max_records), timeout))

    def _fetch_ready(self, max_records: int) -> list[Record]:
        """One non-blocking round-robin pass over assigned partitions.

        With prefetching enabled this reads exclusively from the
        prefetch buffers — going to the broker directly here would race
        the fetcher threads on the same offsets.
        """
        out: list[Record] = []
        budget = max_records
        for tp in self._assignment:
            if budget <= 0:
                break
            if self._prefetcher is not None:
                batch = self._prefetcher.take(tp, self._positions[tp], budget)
            else:
                batch = self._broker.fetch(*tp, self._positions[tp], max_records=budget)
            if batch:
                self._positions[tp] = batch[-1].offset + 1
                out.extend(batch)
                budget -= len(batch)
        return out

    def _account(self, records: list[Record]) -> list[Record]:
        for r in records:
            self.records_consumed += 1
            self.bytes_consumed += r.size
        if self._tracer is not None and records:
            # Batched span recording: one timestamp and one tracer lock
            # for the whole poll batch instead of per record — this loop
            # dominated the enabled-telemetry overhead benchmark.
            now = time.monotonic()
            hops = []
            for r in records:
                ctx = r.headers.get("trace") if r.headers else None
                if ctx:
                    hops.append((ctx, {"offset": r.offset}))
            if hops:
                self._tracer.record_hops(
                    "consumer.poll", hops, site=self._trace_site, start=now, end=now
                )
        return records

    def _partition_logs(self):
        """Partition-log handles when the broker is in-process, else None."""
        getter = getattr(self._broker, "partition_log", None)
        if getter is None:
            return None
        try:
            return [getter(*tp) for tp in self._assignment]
        except Exception:
            return None

    def _poll_blocking_local(self, logs, max_records: int, timeout: float) -> list[Record]:
        """Block across all assigned partitions via append-wakeup events."""
        deadline = time.monotonic() + timeout
        event = threading.Event()
        for log in logs:
            log.register_waiter(event)
        try:
            while True:
                # Re-check readiness after registering so appends racing
                # the registration are not missed.
                out = self._fetch_ready(max_records)
                if out:
                    return out
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                event.wait(remaining)
                event.clear()
        finally:
            for log in logs:
                log.unregister_waiter(event)

    def _poll_blocking_sliced(self, max_records: int, timeout: float) -> list[Record]:
        """Remote multi-partition fallback: rotate short blocking fetches.

        A remote broker cannot hand out partition-log waiters, so
        fairness comes from time-slicing the timeout across partitions —
        data on any partition is picked up within one slice instead of
        waiting out the full timeout behind partition 0.
        """
        deadline = time.monotonic() + timeout
        slice_s = max(0.01, timeout / (4 * len(self._assignment)))
        while True:
            for tp in self._assignment:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                batch = self._broker.fetch(
                    *tp,
                    self._positions[tp],
                    max_records=max_records,
                    timeout=min(slice_s, remaining),
                )
                if batch:
                    self._positions[tp] = batch[-1].offset + 1
                    return batch

    def poll_values(self, max_records: int = 64, timeout: float = 0.0) -> list:
        """Like :meth:`poll`, but returns deserialized values."""
        return [self._serde.deserialize(r.value) for r in self.poll(max_records, timeout)]

    # -- offsets ----------------------------------------------------------------

    def commit(self) -> None:
        """Commit current positions for all assigned partitions.

        Raises :class:`RebalanceInProgressError` when this member is no
        longer part of the group (evicted by the session-timeout sweeper
        mid-batch) — its partitions belong to someone else now, so the
        commit is refused; the next ``poll`` re-joins and refreshes the
        assignment. A mere generation bump with this member still in the
        group does **not** raise: broker-side commits are monotonic, so
        they can never rewind another member's progress.
        """
        if self.group_id is None:
            raise ValidationError("commit() requires a consumer group")
        if self._subscribed_topics and self._generation >= 0:
            generation, _ = self._broker.coordinator.assignment(
                self.group_id, self.client_id
            )
            if generation == 0:
                # assignment() returns (0, []) only for non-members: any
                # live membership has generation >= 1.
                raise RebalanceInProgressError(
                    f"member {self.client_id!r} is no longer in group "
                    f"{self.group_id!r}; positions are stale"
                )
        for tp, offset in self._positions.items():
            self._broker.commit_offset(self.group_id, tp[0], tp[1], offset)

    def lag(self) -> dict[tuple, int]:
        """Per-partition lag: records between position and the log head.

        Lag is ``end_offset - position`` per assigned partition, where
        *position* is the next offset :meth:`poll` would deliver.  Three
        consequences the telemetry sampler (and its tests) rely on:

        - **Seek** moves the position, so seeking backwards immediately
          raises lag (those records will be re-delivered).
        - **Rebalance** starts *newly-assigned* partitions at their
          committed offsets (retained partitions keep their in-memory
          positions), so a partition that changes owner re-exposes the
          previous owner's uncommitted progress as the new owner's lag.
        - **Prefetch-buffered** records (fetched by the background
          fetchers but not yet taken by ``poll``) still count as lag —
          the position only advances on delivery, so buffered-but-unseen
          data is correctly reported as outstanding.

        For committed-offset (group-durable) lag, use
        :meth:`Broker.consumer_lag` / the coordinator's
        ``committed_offsets`` accessor instead.
        """
        return {
            tp: max(0, self._broker.latest_offset(*tp) - pos)
            for tp, pos in self._positions.items()
        }

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Leave the group (triggering a rebalance) and stop consuming.

        Prefetch threads are joined (not abandoned) so a closed consumer
        leaves no background fetchers racing its successor's offsets.
        """
        if self._closed:
            return
        if self._prefetcher is not None:
            self._prefetcher.close()
        if self.group_id is not None and self._subscribed_topics:
            self._broker.coordinator.leave(self.group_id, self.client_id)
        self._closed = True
        if self._owns_broker:
            close = getattr(self._broker, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "Consumer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("consumer is closed")

    def stats(self) -> dict:
        out = {
            "client_id": self.client_id,
            "group_id": self.group_id,
            "records_consumed": self.records_consumed,
            "bytes_consumed": self.bytes_consumed,
            "assignment": list(self._assignment),
            "heartbeats_sent": self.heartbeats_sent,
            "evictions": self.evictions,
            "rebalances": self.rebalances,
        }
        if self._prefetcher is not None:
            out.update(self._prefetcher.stats())
        return out
