"""Consumer client: group membership, polling, offset management.

A consumer either subscribes through a consumer group (partitions are
assigned by the coordinator and rebalanced as members come and go) or is
manually assigned partitions with :meth:`assign` — both modes exist in
Kafka and both are used by the pipeline (grouped consumers for the
processing tier, manual assignment for monitoring taps).
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.broker.broker import Broker
from repro.broker.errors import RebalanceInProgressError, UnknownMemberError
from repro.broker.group import AssignmentStrategy
from repro.broker.message import Record
from repro.broker.serde import BytesSerde, Serde
from repro.util.ids import new_id
from repro.util.validation import ValidationError, check_non_negative, check_positive


class Consumer:
    """Client for fetching records from a broker.

    Parameters
    ----------
    broker:
        The broker to consume from.
    group_id:
        Consumer-group name; ``None`` for standalone (manual-assign) use.
    serde:
        Value deserializer applied in :meth:`poll`.
    auto_offset_reset:
        Where to start when the group has no committed offset:
        ``"earliest"`` or ``"latest"``.
    session_timeout_ms:
        Failure-detection window registered with the group coordinator:
        if this consumer stops heartbeating for longer, the coordinator
        evicts it and rebalances its partitions to the survivors.
        ``poll`` piggybacks a heartbeat every ``session_timeout/3``
        seconds, so any consumer that keeps polling stays alive. ``None``
        uses the coordinator's default; 0 disables eviction.
    """

    def __init__(
        self,
        broker: Broker,
        group_id: str | None = None,
        serde: Serde | None = None,
        auto_offset_reset: str = "earliest",
        client_id: str | None = None,
        session_timeout_ms: float | None = None,
    ) -> None:
        if auto_offset_reset not in ("earliest", "latest"):
            raise ValidationError(
                f"auto_offset_reset must be 'earliest' or 'latest', got {auto_offset_reset!r}"
            )
        if session_timeout_ms is not None:
            check_non_negative("session_timeout_ms", session_timeout_ms)
        self._broker = broker
        self._serde = serde or BytesSerde()
        self.group_id = group_id
        self.client_id = client_id or new_id("consumer")
        self._auto_offset_reset = auto_offset_reset
        self._subscribed_topics: list[str] = []
        self._strategy: AssignmentStrategy | None = None
        self._generation = -1
        self._assignment: list[tuple] = []
        #: (topic, partition) -> next offset to fetch
        self._positions: dict[tuple, int] = {}
        self._closed = False
        self.session_timeout_ms = session_timeout_ms
        self._last_heartbeat = 0.0
        # Consume-side metrics.
        self.records_consumed = 0
        self.bytes_consumed = 0
        self.heartbeats_sent = 0
        #: Times this consumer discovered it had been evicted (a missed
        #: session deadline) and had to re-join the group.
        self.evictions = 0
        self.rebalances = 0

    # -- subscription -----------------------------------------------------

    def subscribe(self, topics: list[str] | str, strategy: AssignmentStrategy | None = None) -> None:
        """Join the consumer group for *topics*."""
        if self.group_id is None:
            raise ValidationError("subscribe() requires a group_id; use assign() instead")
        if isinstance(topics, str):
            topics = [topics]
        self._check_open()
        self._subscribed_topics = list(topics)
        self._strategy = strategy
        self._join()
        self._refresh_assignment()

    def _join(self) -> None:
        kwargs = {}
        if self.session_timeout_ms is not None:
            kwargs["session_timeout_ms"] = self.session_timeout_ms
        self._broker.coordinator.join(
            self.group_id,
            self.client_id,
            self._subscribed_topics,
            strategy=self._strategy,
            **kwargs,
        )
        self._last_heartbeat = time.monotonic()

    def assign(self, partitions: list[tuple]) -> None:
        """Manually assign ``(topic, partition)`` pairs (no group)."""
        self._check_open()
        if self.group_id is not None and self._subscribed_topics:
            raise ValidationError("cannot mix subscribe() and assign()")
        for topic, partition in partitions:
            # Validate against partition count (works for local topics
            # and remote topic proxies alike).
            n = self._broker.topic(topic).num_partitions
            if not 0 <= partition < n:
                from repro.broker.errors import UnknownPartitionError

                raise UnknownPartitionError(topic, partition)
        self._assignment = sorted(partitions)
        self._init_positions()

    def _refresh_assignment(self) -> None:
        generation, assignment = self._broker.coordinator.assignment(
            self.group_id, self.client_id
        )
        if generation != self._generation:
            if self._generation >= 0:
                self.rebalances += 1
            self._generation = generation
            self._assignment = assignment
            self._init_positions()

    def _heartbeat_if_due(self) -> None:
        """Piggyback a heartbeat on poll; re-join if we were evicted.

        Heartbeats go out every third of the session timeout (Kafka's
        default ratio). A heartbeat rejected with
        :class:`UnknownMemberError` means the coordinator already evicted
        us — our assignment is void, so re-join and raise
        :class:`RebalanceInProgressError` so the caller knows records may
        have been handed to another member.
        """
        timeout_ms = self.session_timeout_ms
        if not timeout_ms:
            # No session timeout: membership never expires, but still
            # send an occasional lease refresh when the coordinator has a
            # group-level timeout configured.
            coordinator_default = getattr(
                self._broker.coordinator, "session_timeout_ms", 0.0
            )
            if not coordinator_default:
                return
            timeout_ms = coordinator_default
        interval = timeout_ms / 3000.0
        now = time.monotonic()
        if now - self._last_heartbeat < interval:
            return
        try:
            self._broker.coordinator.heartbeat(self.group_id, self.client_id)
            self.heartbeats_sent += 1
            self._last_heartbeat = now
        except UnknownMemberError:
            self.evictions += 1
            self._join()
            self._refresh_assignment()
            raise RebalanceInProgressError(
                f"consumer {self.client_id!r} was evicted from group "
                f"{self.group_id!r} and re-joined"
            ) from None

    def _init_positions(self) -> None:
        positions: dict[tuple, int] = {}
        for tp in self._assignment:
            if tp in self._positions:
                positions[tp] = self._positions[tp]
                continue
            committed = (
                self._broker.committed_offset(self.group_id, *tp)
                if self.group_id
                else None
            )
            if committed is not None:
                positions[tp] = committed
            elif self._auto_offset_reset == "earliest":
                positions[tp] = self._broker.earliest_offset(*tp)
            else:
                positions[tp] = self._broker.latest_offset(*tp)
        self._positions = positions

    @property
    def assignment(self) -> list[tuple]:
        return list(self._assignment)

    def position(self, topic: str, partition: int) -> int | None:
        return self._positions.get((topic, partition))

    def seek(self, topic: str, partition: int, offset: int) -> None:
        tp = (topic, partition)
        if tp not in self._positions:
            raise ValidationError(f"{tp} is not assigned to this consumer")
        self._positions[tp] = int(offset)

    # -- polling ------------------------------------------------------------

    def poll(self, max_records: int = 64, timeout: float = 0.0) -> list[Record]:
        """Fetch up to *max_records* across assigned partitions.

        Returns raw :class:`Record` objects; use :meth:`poll_values` to
        get deserialized payloads. Blocks up to *timeout* seconds when no
        data is available on any partition.
        """
        check_positive("max_records", max_records)
        self._check_open()
        if self.group_id is not None and self._subscribed_topics:
            try:
                self._heartbeat_if_due()
            except RebalanceInProgressError:
                # Evicted and re-joined: the refreshed assignment is
                # already in place, but this poll round returns empty so
                # the caller observes the boundary (positions were reset
                # to committed offsets).
                return []
            # Eager rebalance check, as Kafka consumers do on poll().
            current = self._broker.coordinator.generation(self.group_id)
            if current != self._generation:
                self._refresh_assignment()
        if not self._assignment:
            return []

        out = self._fetch_ready(int(max_records))
        if out or timeout <= 0:
            return self._account(out)
        # Blocking pass. A single assigned partition can block directly
        # inside that partition's fetch (works locally and over the
        # wire); with several partitions we must wake on data arriving on
        # *any* of them — waiting on only the first would leave records
        # landing on the others stuck for the full timeout.
        if len(self._assignment) == 1:
            tp = self._assignment[0]
            batch = self._broker.fetch(
                *tp, self._positions[tp], max_records=int(max_records), timeout=timeout
            )
            if batch:
                self._positions[tp] = batch[-1].offset + 1
            return self._account(batch)
        logs = self._partition_logs()
        if logs is not None:
            return self._account(
                self._poll_blocking_local(logs, int(max_records), timeout)
            )
        return self._account(self._poll_blocking_sliced(int(max_records), timeout))

    def _fetch_ready(self, max_records: int) -> list[Record]:
        """One non-blocking round-robin pass over assigned partitions."""
        out: list[Record] = []
        budget = max_records
        for tp in self._assignment:
            if budget <= 0:
                break
            batch = self._broker.fetch(*tp, self._positions[tp], max_records=budget)
            if batch:
                self._positions[tp] = batch[-1].offset + 1
                out.extend(batch)
                budget -= len(batch)
        return out

    def _account(self, records: list[Record]) -> list[Record]:
        for r in records:
            self.records_consumed += 1
            self.bytes_consumed += r.size
        return records

    def _partition_logs(self):
        """Partition-log handles when the broker is in-process, else None."""
        getter = getattr(self._broker, "partition_log", None)
        if getter is None:
            return None
        try:
            return [getter(*tp) for tp in self._assignment]
        except Exception:
            return None

    def _poll_blocking_local(self, logs, max_records: int, timeout: float) -> list[Record]:
        """Block across all assigned partitions via append-wakeup events."""
        deadline = time.monotonic() + timeout
        event = threading.Event()
        for log in logs:
            log.register_waiter(event)
        try:
            while True:
                # Re-check readiness after registering so appends racing
                # the registration are not missed.
                out = self._fetch_ready(max_records)
                if out:
                    return out
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                event.wait(remaining)
                event.clear()
        finally:
            for log in logs:
                log.unregister_waiter(event)

    def _poll_blocking_sliced(self, max_records: int, timeout: float) -> list[Record]:
        """Remote multi-partition fallback: rotate short blocking fetches.

        A remote broker cannot hand out partition-log waiters, so
        fairness comes from time-slicing the timeout across partitions —
        data on any partition is picked up within one slice instead of
        waiting out the full timeout behind partition 0.
        """
        deadline = time.monotonic() + timeout
        slice_s = max(0.01, timeout / (4 * len(self._assignment)))
        while True:
            for tp in self._assignment:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                batch = self._broker.fetch(
                    *tp,
                    self._positions[tp],
                    max_records=max_records,
                    timeout=min(slice_s, remaining),
                )
                if batch:
                    self._positions[tp] = batch[-1].offset + 1
                    return batch

    def poll_values(self, max_records: int = 64, timeout: float = 0.0) -> list:
        """Like :meth:`poll`, but returns deserialized values."""
        return [self._serde.deserialize(r.value) for r in self.poll(max_records, timeout)]

    # -- offsets ----------------------------------------------------------------

    def commit(self) -> None:
        """Commit current positions for all assigned partitions.

        Raises :class:`RebalanceInProgressError` when this member is no
        longer part of the group (evicted by the session-timeout sweeper
        mid-batch) — its partitions belong to someone else now, so the
        commit is refused; the next ``poll`` re-joins and refreshes the
        assignment. A mere generation bump with this member still in the
        group does **not** raise: broker-side commits are monotonic, so
        they can never rewind another member's progress.
        """
        if self.group_id is None:
            raise ValidationError("commit() requires a consumer group")
        if self._subscribed_topics and self._generation >= 0:
            generation, _ = self._broker.coordinator.assignment(
                self.group_id, self.client_id
            )
            if generation == 0:
                # assignment() returns (0, []) only for non-members: any
                # live membership has generation >= 1.
                raise RebalanceInProgressError(
                    f"member {self.client_id!r} is no longer in group "
                    f"{self.group_id!r}; positions are stale"
                )
        for tp, offset in self._positions.items():
            self._broker.commit_offset(self.group_id, tp[0], tp[1], offset)

    def lag(self) -> dict[tuple, int]:
        """Per-partition lag: records between position and the log head."""
        return {
            tp: max(0, self._broker.latest_offset(*tp) - pos)
            for tp, pos in self._positions.items()
        }

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        """Leave the group (triggering a rebalance) and stop consuming."""
        if self._closed:
            return
        if self.group_id is not None and self._subscribed_topics:
            self._broker.coordinator.leave(self.group_id, self.client_id)
        self._closed = True

    def __enter__(self) -> "Consumer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("consumer is closed")

    def stats(self) -> dict:
        return {
            "client_id": self.client_id,
            "group_id": self.group_id,
            "records_consumed": self.records_consumed,
            "bytes_consumed": self.bytes_consumed,
            "assignment": list(self._assignment),
            "heartbeats_sent": self.heartbeats_sent,
            "evictions": self.evictions,
            "rebalances": self.rebalances,
        }
