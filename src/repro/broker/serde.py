"""Pluggable value serializers for producers and consumers.

``BlockSerde`` is the workhorse for the paper's workloads: it frames
NumPy data blocks with the wire format from :mod:`repro.data.serde`
(8 bytes per value + 16-byte header), so the benchmark message sizes
match the paper's 7 KB – 2.6 MB range exactly.
"""

from __future__ import annotations

import json
import pickle
from typing import Any

import numpy as np

from repro.data.serde import decode_block, encode_block


class Serde:
    """Serializer/deserializer interface."""

    def serialize(self, value: Any) -> bytes:
        raise NotImplementedError

    def deserialize(self, payload: bytes) -> Any:
        raise NotImplementedError


class BytesSerde(Serde):
    """Pass-through for values that are already bytes."""

    def serialize(self, value: Any) -> bytes:
        if isinstance(value, bytes):
            return value
        if isinstance(value, (bytearray, memoryview)):
            return bytes(value)
        raise TypeError(f"BytesSerde expects bytes, got {type(value).__name__}")

    def deserialize(self, payload: bytes) -> bytes:
        return payload


class JsonSerde(Serde):
    """UTF-8 JSON; for small control/metadata messages."""

    def serialize(self, value: Any) -> bytes:
        return json.dumps(value, separators=(",", ":")).encode("utf-8")

    def deserialize(self, payload: bytes) -> Any:
        return json.loads(payload.decode("utf-8"))


class BlockSerde(Serde):
    """NumPy data blocks in the framework wire format (float64, framed).

    ``compress=True`` deflates payloads on the wire (decoding always
    auto-detects, so mixed producers are fine). Decoding is zero-copy by
    default — consumers get a read-only view over the record payload;
    pass ``copy=True`` when downstream code mutates blocks in place.
    """

    def __init__(self, compress: bool = False, level: int = 1, copy: bool = False) -> None:
        self.compress = bool(compress)
        self.level = int(level)
        self.copy = bool(copy)

    def serialize(self, value: Any) -> bytes:
        return encode_block(np.asarray(value), compress=self.compress, level=self.level)

    def deserialize(self, payload: bytes) -> np.ndarray:
        return decode_block(payload, copy=self.copy)


class PickleSerde(Serde):
    """Arbitrary Python objects.

    Only for trusted, in-process pipelines (pickle is not safe across
    trust boundaries); used by tests and the parameter-server transport.
    """

    def serialize(self, value: Any) -> bytes:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def deserialize(self, payload: bytes) -> Any:
        return pickle.loads(payload)
