"""Append-only partition log with offset addressing and retention.

The partition is the broker's unit of parallelism — the paper assigns one
partition per edge device so device streams can be consumed concurrently.

Thread safety: appends and reads are guarded by one lock per partition; a
condition variable lets consumers block on new data with a timeout, which
is what gives the pipeline its push-like latency without busy polling.
Consumers that need to wait across *several* partitions register a shared
:class:`threading.Event` with each log (:meth:`register_waiter`) — the
log sets it on every append, so one consumer thread can sleep on many
partitions at once.

Performance notes: records live in a :class:`collections.deque`, making
head eviction (retention) O(1) instead of the O(n) shift of
``list.pop(0)``. :meth:`append_many` stamps a whole batch under a single
lock acquisition and a single notification — the produce fast path.
Fetches on *dense* logs (no compaction gaps: exactly one record per
offset in ``[base, next)``) translate offsets to positions with direct
index arithmetic; only compacted logs fall back to binary search.

Durability: with ``log_dir`` (or a shared ``storage`` manager) set, the
log gains a :class:`~repro.broker.storage.log.SegmentStore` backend.
Every append is mirrored into the store's group-commit queue; the deque
then holds only the *active segment's* records (the hot tail — evicted
below the store's sealed boundary), and reads below that boundary are
served zero-copy from memory-mapped sealed segments. A restart rebuilds
the tail, offsets, and producer-dedup state from disk. The deque-only
mode is unchanged and remains the default.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from itertools import islice

from repro.broker.errors import (
    OffsetOutOfRangeError,
    OutOfOrderSequenceError,
    ProducerFencedError,
)
from repro.broker.message import Record
from repro.broker.storage.log import (
    GroupCommitFlusher,
    LogStorageManager,
    SegmentStore,
    StorageConfig,
    StorageError,
)
from repro.util.validation import ValidationError, check_non_negative, check_positive

#: Recent-batch window per producer (Kafka caches the last 5 batches):
#: a retried batch older than this window is a protocol violation.
_DEDUP_WINDOW = 5

#: Upper bound on an fsync-acked append's wait for its group commit; a
#: healthy flusher retires the queue within one flush interval, so
#: hitting this means the disk (or an injected fault) wedged the store.
_FSYNC_ACK_TIMEOUT = 30.0


class _ProducerState:
    """Per-producer idempotence bookkeeping for one partition.

    Tracks the producer's epoch, the highest sequence number appended,
    and a sliding window of recently appended batches so a retried
    (replayed) batch can be acknowledged with its *original* offsets
    instead of being appended twice.
    """

    __slots__ = ("epoch", "last_sequence", "recent")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.last_sequence = -1
        #: deque of (base_sequence, base_offset, count), newest last.
        self.recent: deque[tuple[int, int, int]] = deque(maxlen=_DEDUP_WINDOW)

    def find_batch(self, base_sequence: int, count: int) -> tuple[int, int] | None:
        """Original (base_offset, count) of an already-appended batch."""
        for seq, offset, n in self.recent:
            if seq == base_sequence and n == count:
                return offset, n
        return None


class PartitionLog:
    """A single partition: an append-only record log.

    Parameters
    ----------
    topic, partition:
        Identity, stamped into every record.
    retention_bytes:
        Oldest records are dropped once the log exceeds this size
        (0 = unlimited). Mirrors Kafka size-based retention; the
        experiments keep it unlimited, the property tests exercise it.
    retention_seconds:
        Records older than this (by append time) are dropped on the next
        append or explicit :meth:`enforce_retention` call (0 = unlimited).
        On a durable log, both policies drop whole sealed *segments*
        (the active segment is never dropped), so enforcement is at
        segment granularity and ``retention_bytes`` counts on-disk file
        bytes (framing included).
    storage:
        Durable backend selector: a
        :class:`~repro.broker.storage.log.LogStorageManager` (the
        broker-level form — stores share one flusher thread), a
        :class:`~repro.broker.storage.log.StorageConfig` (used with
        *log_dir*), or ``None`` for the in-memory deque (default).
    log_dir:
        Standalone durable form: the log owns a private store (and
        flusher) rooted at ``{log_dir}/{topic}-{partition}``. Ignored
        when *storage* is a manager.
    """

    def __init__(
        self,
        topic: str,
        partition: int,
        retention_bytes: int = 0,
        retention_seconds: float = 0.0,
        log_dir: str | None = None,
        storage=None,
    ) -> None:
        check_non_negative("partition", partition)
        check_non_negative("retention_bytes", retention_bytes)
        check_non_negative("retention_seconds", retention_seconds)
        self.topic = topic
        self.partition = int(partition)
        self.retention_bytes = int(retention_bytes)
        self.retention_seconds = float(retention_seconds)
        self._records: deque[Record] = deque()
        self._base_offset = 0  # earliest fetchable offset
        self._mem_base = 0  # offset of _records[0] (== _base_offset in-memory)
        self._next_offset = 0
        self._bytes = 0
        self._lock = threading.Lock()
        self._data_available = threading.Condition(self._lock)
        # Events registered by consumers blocking across multiple
        # partitions; set (never cleared here) on every append.
        self._waiters: list[threading.Event] = []
        # Cumulative counters for broker-side metrics.
        self.total_appended = 0
        self.total_bytes_in = 0
        #: Idempotent-producer bookkeeping: producer_id -> _ProducerState.
        self._producers: dict[int, _ProducerState] = {}
        #: Records dropped because a retried batch was already appended.
        self.duplicates_dropped = 0
        #: Fetches that parked on the condition variable at least once
        #: (long-poll accounting: a parked fetch costs zero CPU until an
        #: append wakes it, versus a client-side poll loop paying one
        #: round-trip per probe).
        self.long_polls_parked = 0
        # High-watermark: the replication visibility fence. ``None``
        # disables it entirely (the unreplicated fast path: consumers see
        # up to the log end, exactly the pre-replication behavior). When
        # set, fetches only return records below it — records above are
        # appended but not yet acknowledged by the full in-sync replica
        # set, so exposing them could un-deliver data on failover.
        self._hwm: int | None = None
        # Durable backend (None = deque-only). _owned_flusher is set when
        # this log created a private flusher (log_dir form) and must stop
        # it on close; manager-provided stores share the manager's.
        self._store: SegmentStore | None = None
        self._owned_flusher: GroupCommitFlusher | None = None
        self._fsync_acks = False
        if isinstance(storage, LogStorageManager):
            self._store = storage.open(topic, partition)
        elif log_dir is not None:
            config = storage if isinstance(storage, StorageConfig) else StorageConfig()
            self._owned_flusher = GroupCommitFlusher(config.flush_ms)
            self._store = SegmentStore(
                f"{log_dir}/{topic}-{partition}",
                topic,
                partition,
                config=config,
                flusher=self._owned_flusher,
            )
        elif storage is not None:
            raise ValidationError(
                "storage must be a LogStorageManager, or a StorageConfig "
                "combined with log_dir"
            )
        if self._store is not None:
            self._fsync_acks = self._store.config.fsync_acks
            self._recover_from_store()

    def _recover_from_store(self) -> None:
        """Adopt the store's boot-time recovery: the active segment's
        records become the hot tail, offsets and producer dedup windows
        resume where the disk left them."""
        recovered = self._store.recovered
        self._records.extend(recovered.records)
        self._mem_base = (
            recovered.records[0].offset
            if recovered.records
            else recovered.next_offset
        )
        self._base_offset = recovered.base_offset
        self._next_offset = recovered.next_offset
        self._bytes = sum(r.size for r in recovered.records)
        self.total_appended = len(recovered.records)
        self.total_bytes_in = self._bytes
        for pid_str, data in recovered.producer_snapshot.items():
            state = _ProducerState(int(data["epoch"]))
            state.last_sequence = int(data["last_sequence"])
            for seq, offset, n in data.get("recent", ()):
                state.recent.append((int(seq), int(offset), int(n)))
            self._producers[int(pid_str)] = state
        # A restart may find retention already exceeded (e.g. the cap was
        # lowered, or eviction raced the crash): sweep immediately.
        if self.retention_bytes or self.retention_seconds:
            _, new_base = self._store.enforce_retention(
                self.retention_bytes, self.retention_seconds
            )
            self._base_offset = max(self._base_offset, new_base)

    @property
    def storage(self) -> SegmentStore | None:
        """The durable backend, or ``None`` on a deque-only log."""
        return self._store

    def close(self) -> None:
        """Flush and release the durable backend (no-op when in-memory)."""
        if self._store is not None:
            self._store.close()
        if self._owned_flusher is not None:
            self._owned_flusher.stop()

    # -- write path ---------------------------------------------------------

    def _check_sequence(
        self, producer_id: int, producer_epoch: int, base_sequence: int, n: int
    ) -> tuple[int, int] | None:
        """Validate an idempotent batch's sequence (caller holds the lock).

        Returns ``None`` when the batch is fresh and should be appended,
        or the original ``(base_offset, count)`` when it is a replay of an
        already-appended batch (the caller acks it without re-appending).
        Raises :class:`ProducerFencedError` on a stale epoch and
        :class:`OutOfOrderSequenceError` on sequence gaps or replays older
        than the dedup window.
        """
        state = self._producers.get(producer_id)
        if state is None or producer_epoch > state.epoch:
            # First contact (or a new epoch): accept the producer's
            # starting sequence as the baseline.
            state = _ProducerState(producer_epoch)
            state.last_sequence = base_sequence - 1
            self._producers[producer_id] = state
        elif producer_epoch < state.epoch:
            raise ProducerFencedError(producer_id, producer_epoch, state.epoch)
        expected = state.last_sequence + 1
        if base_sequence == expected:
            return None
        if base_sequence + n - 1 <= state.last_sequence:
            cached = state.find_batch(base_sequence, n)
            if cached is None:
                # Replay from beyond the dedup window (or with a different
                # batch boundary): we cannot prove it duplicate-free.
                raise OutOfOrderSequenceError(producer_id, expected, base_sequence)
            self.duplicates_dropped += n
            return cached
        raise OutOfOrderSequenceError(producer_id, expected, base_sequence)

    def _commit_sequence(
        self, producer_id: int, base_sequence: int, base_offset: int, n: int
    ) -> None:
        """Record a freshly appended batch (caller holds the lock)."""
        state = self._producers[producer_id]
        state.last_sequence = base_sequence + n - 1
        state.recent.append((base_sequence, base_offset, n))

    def append(
        self,
        value: bytes,
        key: bytes | None = None,
        headers: dict | None = None,
        produce_ts: float | None = None,
        producer_id: int | None = None,
        producer_epoch: int = 0,
        sequence: int | None = None,
    ) -> Record:
        """Append one record; returns it (with offset and append_ts set).

        With ``producer_id``/``sequence`` set, the append is idempotent: a
        replayed record (same producer, already-seen sequence) is dropped
        and the *original* record is returned instead of a new offset.
        """
        now = time.monotonic()
        headers = dict(headers or {})
        if produce_ts is None:
            produce_ts = now
        with self._lock:
            if producer_id is not None and sequence is not None:
                cached = self._check_sequence(producer_id, producer_epoch, sequence, 1)
                if cached is not None:
                    original = self._record_at(cached[0])
                    if original is not None:
                        return original
                    # Original evicted by retention: synthesize the ack.
                    return Record(
                        self.topic, self.partition, cached[0], value, key, headers,
                        produce_ts, now,
                    )
            record = Record(
                self.topic,
                self.partition,
                self._next_offset,
                value,
                key,
                headers,
                produce_ts,
                now,
            )
            self._records.append(record)
            if producer_id is not None and sequence is not None:
                self._commit_sequence(producer_id, sequence, record.offset, 1)
            self._next_offset += 1
            self._bytes += record.size
            self.total_appended += 1
            self.total_bytes_in += record.size
            if self._store is not None:
                self._store.append_batch(
                    (record,),
                    producer_id=producer_id if sequence is not None else None,
                    producer_epoch=producer_epoch,
                    base_sequence=sequence,
                )
                self._evict_flushed_locked()
            self._enforce_retention()
            self._notify()
        if self._fsync_acks:
            # Outside the log lock so concurrent producers pile into the
            # same group commit instead of serializing on one fsync each.
            self._wait_durable(record.offset + 1)
        return record

    def _wait_durable(self, offset: int) -> None:
        if not self._store.wait_durable(offset, _FSYNC_ACK_TIMEOUT):
            raise StorageError(
                f"{self.topic}/{self.partition}: fsync ack timed out at "
                f"offset {offset}"
            )

    def _evict_flushed_locked(self) -> None:
        """Drop deque records the store has sealed (caller holds the lock).

        Memory-only: the bytes live in sealed segments and are served by
        mmap from here on. The deque shrinks to the active segment, so
        resident memory tracks ``segment_bytes``, not the log size.
        """
        active_base = self._store.active_base
        records = self._records
        if not records or records[0].offset >= active_base:
            return
        while records and records[0].offset < active_base:
            evicted = records.popleft()
            self._bytes -= evicted.size
        self._mem_base = records[0].offset if records else self._next_offset

    def _record_at(self, offset: int) -> Record | None:
        """The retained record at *offset*, if any (caller holds the lock)."""
        batch = self._slice_at_offset(offset, 1)
        if batch and batch[0].offset == offset:
            return batch[0]
        return None

    def append_many(
        self,
        values,
        keys=None,
        headers=None,
        produce_ts=None,
        producer_id: int | None = None,
        producer_epoch: int = 0,
        base_sequence: int | None = None,
    ) -> list[Record]:
        """Append a batch of records under one lock acquisition.

        This is the produce fast path: one lock round-trip, one retention
        sweep and one consumer notification for the whole batch, versus
        one of each per record on the single-append path. Offsets within
        the batch are contiguous.

        Parameters
        ----------
        values:
            Iterable of payloads.
        keys:
            Optional list of per-record keys (same length as *values*).
        headers:
            Either one dict applied to every record (each record gets its
            own copy) or a list of per-record dicts.
        produce_ts:
            Either one timestamp for the whole batch or a list of
            per-record timestamps; defaults to the append time.
        producer_id, producer_epoch, base_sequence:
            Idempotent-producer identity. When set, a replayed batch
            (already-appended base_sequence) is **not** re-appended: the
            original records are returned so the producer gets the same
            ack twice — at-least-once delivery with duplicate-free
            offsets. A stale epoch raises :class:`ProducerFencedError`;
            a sequence gap raises :class:`OutOfOrderSequenceError`.

        Returns the appended records in offset order.
        """
        values = values if isinstance(values, (list, tuple)) else list(values)
        n = len(values)
        if n == 0:
            return []
        if keys is not None and len(keys) != n:
            raise ValidationError(f"keys length {len(keys)} != values length {n}")
        now = time.monotonic()
        if headers is None:
            headers_list = None
        elif isinstance(headers, dict):
            headers_list = [dict(headers) for _ in range(n)]
        else:
            if len(headers) != n:
                raise ValidationError(
                    f"headers length {len(headers)} != values length {n}"
                )
            headers_list = [dict(h or {}) for h in headers]
        if produce_ts is None or isinstance(produce_ts, (int, float)):
            ts_scalar = now if produce_ts is None else float(produce_ts)
            ts_list = None
        else:
            if len(produce_ts) != n:
                raise ValidationError(
                    f"produce_ts length {len(produce_ts)} != values length {n}"
                )
            ts_scalar = 0.0
            ts_list = produce_ts
        records: list[Record] = []
        add = records.append
        with self._lock:
            if producer_id is not None and base_sequence is not None:
                cached = self._check_sequence(
                    producer_id, producer_epoch, base_sequence, n
                )
                if cached is not None:
                    # Replay: ack with the original records (whatever
                    # retention still holds of them).
                    return self._slice_at_offset(cached[0], cached[1])
            offset = self._next_offset
            bytes_added = 0
            for i in range(n):
                value = values[i]
                key = keys[i] if keys is not None else None
                record = Record(
                    self.topic,
                    self.partition,
                    offset + i,
                    value,
                    key,
                    {} if headers_list is None else headers_list[i],
                    ts_list[i] if ts_list is not None else ts_scalar,
                    now,
                )
                add(record)
                bytes_added += len(value) + (len(key) if key else 0)
            self._records.extend(records)
            if producer_id is not None and base_sequence is not None:
                self._commit_sequence(producer_id, base_sequence, offset, n)
            self._next_offset = offset + n
            self._bytes += bytes_added
            self.total_appended += n
            self.total_bytes_in += bytes_added
            if self._store is not None:
                self._store.append_batch(
                    records,
                    producer_id=producer_id if base_sequence is not None else None,
                    producer_epoch=producer_epoch,
                    base_sequence=base_sequence,
                )
                self._evict_flushed_locked()
            self._enforce_retention()
            self._notify()
        if self._fsync_acks:
            self._wait_durable(offset + n)
        return records

    def _notify(self) -> None:
        # Caller holds the lock.
        self._data_available.notify_all()
        if self._waiters:
            for event in self._waiters:
                event.set()

    # -- replication: high-watermark, truncation, state transfer -------------

    def _visible_end(self) -> int:
        """First offset consumers may NOT see (caller holds the lock)."""
        if self._hwm is None:
            return self._next_offset
        return min(self._hwm, self._next_offset)

    @property
    def high_watermark(self) -> int:
        """Highest consumer-visible end offset.

        Equals :attr:`latest_offset` while replication is disabled; once
        a leader enables the fence it trails the log end by whatever the
        slowest in-sync replica has not yet acknowledged.
        """
        with self._lock:
            return self._visible_end()

    def set_high_watermark(self, offset: int) -> int:
        """Install (and enable) the visibility fence; returns the new value.

        Clamped to the log end and monotonic — a stale advance can never
        rewind visibility (truncation is the only path that lowers it).
        Advancing wakes parked fetches and registered waiters: records
        between the old and new fence just became consumable even though
        no local append happened.
        """
        check_non_negative("offset", offset)
        with self._lock:
            new = min(int(offset), self._next_offset)
            if self._hwm is None or new > self._hwm:
                self._hwm = new
                self._notify()
            return self._hwm

    def wait_for_high_watermark(self, offset: int, timeout: float) -> bool:
        """Block until the visible end reaches *offset* (acks=all waits).

        True when visibility caught up; False at the deadline. Returns
        immediately while replication is disabled (the log end *is* the
        visible end).
        """
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._visible_end() < offset:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._data_available.wait(remaining)
            return True

    def truncate_to(self, offset: int) -> int:
        """Drop every record at ``offset`` and above; returns the count.

        A rejoining follower truncates its log to the new leader's
        high-watermark before re-syncing: records it appended beyond it
        were never ISR-acknowledged and may not exist on the elected
        leader, so keeping them would fork the log.
        """
        check_non_negative("offset", offset)
        removed = 0
        with self._lock:
            if self._store is not None:
                return self._truncate_durable_locked(offset)
            while self._records and self._records[-1].offset >= offset:
                evicted = self._records.pop()
                self._bytes -= evicted.size
                removed += 1
            self._next_offset = max(offset, self._base_offset)
            if not self._records:
                self._base_offset = self._next_offset
                self._mem_base = self._next_offset
            if self._hwm is not None and self._hwm > self._next_offset:
                self._hwm = self._next_offset
        return removed

    def _truncate_durable_locked(self, offset: int) -> int:
        """Truncate disk + deque together (caller holds the lock).

        The store flushes pending data first, cuts the files, and — when
        the cut unwound into sealed segments — hands back the surviving
        records of the segment that becomes the new active one, which
        replace the deque wholesale (the old tail is gone from disk).
        """
        offset = max(offset, self._base_offset)
        old_next = self._next_offset
        if offset >= old_next:
            return 0
        removed = old_next - offset
        survivors = self._store.truncate_to(offset)
        if survivors is None:
            # Cut stayed in the active segment: the deque tail covers it.
            while self._records and self._records[-1].offset >= offset:
                evicted = self._records.pop()
                self._bytes -= evicted.size
        else:
            self._records = deque(survivors)
            self._bytes = sum(r.size for r in survivors)
        self._next_offset = self._store.next_offset
        self._base_offset = self._store.earliest_offset
        self._mem_base = (
            self._records[0].offset if self._records else self._next_offset
        )
        if self._hwm is not None and self._hwm > self._next_offset:
            self._hwm = self._next_offset
        return removed

    def replication_slice(self, offset: int, max_records: int = 512) -> tuple:
        """One consistent snapshot for a leader→follower push.

        Returns ``(records, log_end, high_watermark)`` under a single
        lock acquisition, so the batch, the end offset it extends toward,
        and the fence it carries can never disagree. Reads the raw log —
        replication must ship records *above* the high-watermark; that is
        the whole point of shipping them.
        """
        with self._lock:
            records = self._slice_at_offset(offset, int(max_records))
            return records, self._next_offset, self._visible_end()

    def install_replica_batch(self, base_offset: int, records) -> tuple[bool, int]:
        """Follower-side install of a replicated batch at exact offsets.

        Accepts only a batch that starts precisely at the log end
        (``(True, new_end)``); anything else returns ``(False, end)`` so
        the leader can re-anchor at the follower's actual progress —
        divergence below the end is the *caller's* job to resolve via
        :meth:`truncate_to` first. Bypasses sequence checking: the leader
        already deduplicated, and its producer-state snapshot travels
        separately (:meth:`install_producer_state`).
        """
        with self._lock:
            if base_offset != self._next_offset:
                return False, self._next_offset
            added_bytes = 0
            for record in records:
                self._records.append(record)
                added_bytes += record.size
            if records:
                self._next_offset = records[-1].offset + 1
                self._bytes += added_bytes
                self.total_appended += len(records)
                self.total_bytes_in += added_bytes
                if self._store is not None:
                    # No producer identity: the leader already
                    # deduplicated; dedup state arrives via
                    # install_producer_state alongside the batch.
                    self._store.append_batch(records)
                    self._evict_flushed_locked()
                self._enforce_retention()
                self._notify()
            return True, self._next_offset

    def producer_snapshot(self) -> dict:
        """Wire-able snapshot of the idempotence state (dedup windows).

        Replicated alongside batches so a newly elected leader can keep
        deduplicating producer retries that the old leader already
        appended — without this, every failover would turn at-least-once
        retries into visible duplicates.
        """
        with self._lock:
            return {
                str(pid): {
                    "epoch": state.epoch,
                    "last_sequence": state.last_sequence,
                    "recent": [list(entry) for entry in state.recent],
                }
                for pid, state in self._producers.items()
            }

    def install_producer_state(self, snapshot: dict) -> None:
        """Install a leader's producer-state snapshot (follower side)."""
        with self._lock:
            for pid_str, data in snapshot.items():
                state = _ProducerState(int(data["epoch"]))
                state.last_sequence = int(data["last_sequence"])
                for seq, offset, n in data.get("recent", ()):
                    state.recent.append((int(seq), int(offset), int(n)))
                self._producers[int(pid_str)] = state
            if self._store is not None:
                # Replica installs carry no per-batch producer ids, so
                # the store's recovery mirror must track the pushed
                # snapshot or a restarted follower forgets its windows.
                self._store.save_producer_snapshot(snapshot)

    def _enforce_retention(self) -> None:
        if self._store is not None:
            if self.retention_bytes or self.retention_seconds:
                _, new_base = self._store.enforce_retention(
                    self.retention_bytes, self.retention_seconds
                )
                if new_base > self._base_offset:
                    self._base_offset = new_base
            return
        if self.retention_bytes > 0:
            while self._bytes > self.retention_bytes and len(self._records) > 1:
                self._evict_head()
        if self.retention_seconds > 0:
            cutoff = time.monotonic() - self.retention_seconds
            while len(self._records) > 1 and self._records[0].append_ts < cutoff:
                self._evict_head()

    def _evict_head(self) -> None:
        evicted = self._records.popleft()
        self._bytes -= evicted.size
        # The retention floor is the offset of the surviving head; after
        # compaction the head can jump across an offset gap.
        self._base_offset = (
            self._records[0].offset if self._records else self._next_offset
        )
        self._mem_base = self._base_offset

    def enforce_retention(self) -> None:
        """Apply retention policies now (normally piggybacked on append)."""
        with self._lock:
            self._enforce_retention()

    def compact(self) -> int:
        """Key-based log compaction: keep only the newest record per key.

        Keyless records are always retained (they cannot be superseded).
        Offsets of surviving records are preserved — like Kafka, a
        compacted log has offset gaps. Returns the number of records
        removed.
        """
        if self._store is not None:
            raise ValidationError(
                "compaction is not supported on durable (segment-backed) logs"
            )
        with self._lock:
            latest_for_key: dict = {}
            for record in self._records:
                if record.key is not None:
                    latest_for_key[record.key] = record.offset
            kept = [
                r
                for r in self._records
                if r.key is None or latest_for_key[r.key] == r.offset
            ]
            removed = len(self._records) - len(kept)
            if removed:
                self._records = deque(kept)
                self._bytes = sum(r.size for r in kept)
            return removed

    # -- consumer wakeup across partitions ----------------------------------

    def register_waiter(self, event: threading.Event) -> None:
        """Register an event set on every append (multi-partition polls)."""
        with self._lock:
            self._waiters.append(event)

    def unregister_waiter(self, event: threading.Event) -> None:
        with self._lock:
            try:
                self._waiters.remove(event)
            except ValueError:
                pass

    # -- read path ------------------------------------------------------------

    def _is_dense(self) -> bool:
        # Dense = exactly one record per offset in [mem_base, next):
        # positions map to offsets by plain arithmetic. Compaction breaks
        # density until eviction catches the head back up. (On a durable
        # log the deque holds only [mem_base, next) — the active-segment
        # tail — and is always dense.)
        return len(self._records) == self._next_offset - self._mem_base

    def _slice(self, start: int, count: int) -> list[Record]:
        """Positional slice of the deque (caller holds the lock)."""
        n = len(self._records)
        stop = min(start + count, n)
        if start >= stop:
            return []
        if start <= n - stop:
            # Near the left end: a forward islice walks `start` items.
            return list(islice(self._records, start, stop))
        # Near the right end (consumer keeping up with the head): direct
        # indexing costs O(n - i) per item from the closer end.
        records = self._records
        return [records[i] for i in range(start, stop)]

    def _mem_slice(self, offset: int, count: int) -> list[Record]:
        """Deque records in ``[offset, offset+count)`` (lock held)."""
        offset = max(offset, self._mem_base)
        if self._is_dense():
            start = offset - self._mem_base
        else:
            start = bisect.bisect_left(self._records, offset, key=lambda r: r.offset)
        return self._slice(start, count)

    def _slice_at_offset(self, offset: int, count: int) -> list[Record]:
        """Retained records in ``[offset, offset+count)`` (lock held).

        On a durable log, offsets below the deque's head come off the
        sealed segments' mmaps (zero-copy) and the batch continues
        seamlessly into the in-memory tail — sealed segments always end
        exactly where the active segment (= the deque) begins.
        """
        if offset >= self._next_offset:
            return []
        offset = max(offset, self._base_offset)
        if self._store is not None and offset < self._mem_base:
            disk = self._store.read(offset, count)
            if len(disk) >= count:
                return disk
            resume = disk[-1].offset + 1 if disk else self._mem_base
            return disk + self._mem_slice(resume, count - len(disk))
        return self._mem_slice(offset, count)

    def fetch(
        self,
        offset: int,
        max_records: int = 64,
        timeout: float = 0.0,
        min_bytes: int = 1,
    ) -> list[Record]:
        """Fetch up to *max_records* starting at *offset*.

        Blocks up to *timeout* seconds when fewer than *min_bytes* of
        record payload are available at the offset (Kafka's
        ``fetch.min.bytes`` / ``fetch.max.wait.ms`` long-poll contract:
        with the default ``min_bytes=1`` any data returns immediately;
        larger values trade latency for fuller batches on high-RTT
        links). At the deadline, whatever is available is returned —
        possibly an empty list. Raises :class:`OffsetOutOfRangeError` for
        offsets below the retention floor or beyond the head.
        """
        check_non_negative("offset", offset)
        check_positive("max_records", max_records)
        min_bytes = max(1, int(min_bytes))
        deadline = time.monotonic() + timeout
        parked = False
        with self._lock:
            while True:
                if offset < self._base_offset or offset > self._next_offset:
                    raise OffsetOutOfRangeError(
                        self.topic, self.partition, offset, self._base_offset, self._next_offset
                    )
                batch = self._slice_at_offset(offset, int(max_records))
                if self._hwm is not None and batch:
                    # Replication fence: records past the high-watermark
                    # exist but are not ISR-acknowledged yet — invisible.
                    visible = self._visible_end()
                    batch = [r for r in batch if r.offset < visible]
                if batch and (
                    min_bytes <= 1
                    or len(batch) >= int(max_records)
                    or sum(r.size for r in batch) >= min_bytes
                ):
                    return batch
                remaining = deadline - time.monotonic()
                if timeout <= 0 or remaining <= 0:
                    return batch
                if not parked:
                    parked = True
                    self.long_polls_parked += 1
                self._data_available.wait(remaining)

    def poll_fetch(
        self,
        offset: int,
        max_records: int = 64,
        min_bytes: int = 1,
    ) -> tuple[list[Record], bool]:
        """Non-blocking fetch probe for event-loop servers.

        Returns ``(batch, satisfied)``: *satisfied* is True when the
        long-poll contract of :meth:`fetch` would return *batch* now
        (data present and the ``min_bytes`` / full-batch threshold met).
        When False, the caller should park — registering a waiter first
        and re-probing after, so an append racing the park is never
        missed. Raises :class:`OffsetOutOfRangeError` like :meth:`fetch`.
        """
        check_non_negative("offset", offset)
        check_positive("max_records", max_records)
        min_bytes = max(1, int(min_bytes))
        with self._lock:
            if offset < self._base_offset or offset > self._next_offset:
                raise OffsetOutOfRangeError(
                    self.topic, self.partition, offset, self._base_offset, self._next_offset
                )
            batch = self._slice_at_offset(offset, int(max_records))
            if self._hwm is not None and batch:
                visible = self._visible_end()
                batch = [r for r in batch if r.offset < visible]
            satisfied = bool(batch) and (
                min_bytes <= 1
                or len(batch) >= int(max_records)
                or sum(r.size for r in batch) >= min_bytes
            )
            return batch, satisfied

    def note_long_poll_parked(self) -> None:
        """Count a long-poll that parked outside the condition variable.

        The reactor server parks fetches as event-loop state rather than
        blocking in :meth:`fetch`; this keeps ``long_polls_parked``
        accurate for broker stats and the telemetry sampler either way.
        """
        with self._lock:
            self.long_polls_parked += 1

    def offset_for_time(self, timestamp: float) -> int | None:
        """Earliest offset whose append time is >= *timestamp*.

        Returns ``None`` when every retained record is older — the
        consumer should then start at :attr:`latest_offset`.
        """
        if self._store is not None:
            # Sealed records are strictly older than the deque tail, so a
            # sealed hit (found via batch headers, at most one decode) is
            # the earliest answer; miss = continue into the tail below.
            sealed = self._store.offset_for_time(timestamp)
            if sealed is not None:
                return sealed
        with self._lock:
            idx = bisect.bisect_left(
                self._records, timestamp, key=lambda r: r.append_ts
            )
            if idx >= len(self._records):
                return None
            return self._records[idx].offset

    # -- introspection -----------------------------------------------------------

    @property
    def earliest_offset(self) -> int:
        with self._lock:
            return self._base_offset

    @property
    def latest_offset(self) -> int:
        """Offset that the *next* append will receive (log head)."""
        with self._lock:
            return self._next_offset

    @property
    def size_bytes(self) -> int:
        """Retained payload bytes (in-memory) or on-disk log footprint
        including batch framing (durable) — the size retention acts on."""
        if self._store is not None:
            return self._store.size_bytes
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        if self._store is not None:
            # Durable logs are dense (no compaction), so the retained
            # count is pure offset arithmetic — no disk touched.
            with self._lock:
                return self._next_offset - self._base_offset
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:
        return (
            f"PartitionLog({self.topic}/{self.partition}, "
            f"offsets=[{self._base_offset}, {self._next_offset}))"
        )
