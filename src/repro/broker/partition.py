"""Append-only partition log with offset addressing and retention.

The partition is the broker's unit of parallelism — the paper assigns one
partition per edge device so device streams can be consumed concurrently.

Thread safety: appends and reads are guarded by one lock per partition; a
condition variable lets consumers block on new data with a timeout, which
is what gives the pipeline its push-like latency without busy polling.
"""

from __future__ import annotations

import bisect
import threading
import time

from repro.broker.errors import OffsetOutOfRangeError
from repro.broker.message import Record
from repro.util.validation import check_non_negative, check_positive


class PartitionLog:
    """A single partition: an append-only record log.

    Parameters
    ----------
    topic, partition:
        Identity, stamped into every record.
    retention_bytes:
        Oldest records are dropped once the log exceeds this size
        (0 = unlimited). Mirrors Kafka size-based retention; the
        experiments keep it unlimited, the property tests exercise it.
    retention_seconds:
        Records older than this (by append time) are dropped on the next
        append or explicit :meth:`enforce_retention` call (0 = unlimited).
    """

    def __init__(
        self,
        topic: str,
        partition: int,
        retention_bytes: int = 0,
        retention_seconds: float = 0.0,
    ) -> None:
        check_non_negative("partition", partition)
        check_non_negative("retention_bytes", retention_bytes)
        check_non_negative("retention_seconds", retention_seconds)
        self.topic = topic
        self.partition = int(partition)
        self.retention_bytes = int(retention_bytes)
        self.retention_seconds = float(retention_seconds)
        self._records: list[Record] = []
        self._base_offset = 0  # offset of _records[0]
        self._next_offset = 0
        self._bytes = 0
        self._lock = threading.Lock()
        self._data_available = threading.Condition(self._lock)
        # Cumulative counters for broker-side metrics.
        self.total_appended = 0
        self.total_bytes_in = 0

    # -- write path ---------------------------------------------------------

    def append(
        self,
        value: bytes,
        key: bytes | None = None,
        headers: dict | None = None,
        produce_ts: float | None = None,
    ) -> Record:
        """Append one record; returns it (with offset and append_ts set)."""
        now = time.monotonic()
        record = Record(
            topic=self.topic,
            partition=self.partition,
            offset=0,  # replaced below under the lock
            value=value,
            key=key,
            headers=dict(headers or {}),
            produce_ts=now if produce_ts is None else produce_ts,
            append_ts=now,
        )
        with self._lock:
            record = Record(
                topic=record.topic,
                partition=record.partition,
                offset=self._next_offset,
                value=record.value,
                key=record.key,
                headers=record.headers,
                produce_ts=record.produce_ts,
                append_ts=record.append_ts,
            )
            self._records.append(record)
            self._next_offset += 1
            self._bytes += record.size
            self.total_appended += 1
            self.total_bytes_in += record.size
            self._enforce_retention()
            self._data_available.notify_all()
        return record

    def _enforce_retention(self) -> None:
        if self.retention_bytes > 0:
            while self._bytes > self.retention_bytes and len(self._records) > 1:
                self._evict_head()
        if self.retention_seconds > 0:
            cutoff = time.monotonic() - self.retention_seconds
            while len(self._records) > 1 and self._records[0].append_ts < cutoff:
                self._evict_head()

    def _evict_head(self) -> None:
        evicted = self._records.pop(0)
        self._bytes -= evicted.size
        self._base_offset += 1

    def enforce_retention(self) -> None:
        """Apply retention policies now (normally piggybacked on append)."""
        with self._lock:
            self._enforce_retention()

    def compact(self) -> int:
        """Key-based log compaction: keep only the newest record per key.

        Keyless records are always retained (they cannot be superseded).
        Offsets of surviving records are preserved — like Kafka, a
        compacted log has offset gaps. Returns the number of records
        removed.
        """
        with self._lock:
            latest_for_key: dict = {}
            for record in self._records:
                if record.key is not None:
                    latest_for_key[record.key] = record.offset
            kept = [
                r
                for r in self._records
                if r.key is None or latest_for_key[r.key] == r.offset
            ]
            removed = len(self._records) - len(kept)
            if removed:
                self._records = kept
                self._bytes = sum(r.size for r in kept)
            return removed

    # -- read path ------------------------------------------------------------

    def fetch(
        self,
        offset: int,
        max_records: int = 64,
        timeout: float = 0.0,
    ) -> list[Record]:
        """Fetch up to *max_records* starting at *offset*.

        Blocks up to *timeout* seconds when the offset is at the head and
        no data is available. Raises :class:`OffsetOutOfRangeError` for
        offsets below the retention floor or beyond the head.
        """
        check_non_negative("offset", offset)
        check_positive("max_records", max_records)
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                if offset < self._base_offset or offset > self._next_offset:
                    raise OffsetOutOfRangeError(
                        self.topic, self.partition, offset, self._base_offset, self._next_offset
                    )
                # Binary search: compaction leaves offset gaps, so the
                # record list cannot be indexed positionally.
                start = bisect.bisect_left(self._records, offset, key=lambda r: r.offset)
                batch = self._records[start : start + int(max_records)]
                if batch or timeout <= 0:
                    return list(batch)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._data_available.wait(remaining)

    def offset_for_time(self, timestamp: float) -> int | None:
        """Earliest offset whose append time is >= *timestamp*.

        Returns ``None`` when every retained record is older — the
        consumer should then start at :attr:`latest_offset`.
        """
        with self._lock:
            idx = bisect.bisect_left(
                self._records, timestamp, key=lambda r: r.append_ts
            )
            if idx >= len(self._records):
                return None
            return self._records[idx].offset

    # -- introspection -----------------------------------------------------------

    @property
    def earliest_offset(self) -> int:
        with self._lock:
            return self._base_offset

    @property
    def latest_offset(self) -> int:
        """Offset that the *next* append will receive (log head)."""
        with self._lock:
            return self._next_offset

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:
        return (
            f"PartitionLog({self.topic}/{self.partition}, "
            f"offsets=[{self._base_offset}, {self._next_offset}))"
        )
