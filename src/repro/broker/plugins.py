"""Broker plugin registry.

The paper encapsulates "brokering concerns" behind a plugin mechanism so
that alternative brokers (MQTT for low-power edges) can replace Kafka.
Plugins are registered by name with the :func:`broker_plugin` decorator
and instantiated through :func:`create_broker`.
"""

from __future__ import annotations

from typing import Callable

from repro.util.validation import ValidationError

_REGISTRY: dict[str, Callable] = {}


def broker_plugin(name: str) -> Callable:
    """Class decorator registering a broker implementation under *name*."""

    def register(cls):
        if not name or not name.replace("-", "_").isidentifier():
            raise ValidationError(f"invalid plugin name {name!r}")
        if name in _REGISTRY:
            raise ValidationError(f"broker plugin {name!r} already registered")
        _REGISTRY[name] = cls
        cls.plugin_name = name
        return cls

    return register


def create_broker(plugin: str = "kafka", **kwargs):
    """Instantiate a broker by plugin name.

    The default ``"kafka"`` plugin is the full partitioned broker; the
    ``"mqtt"`` plugin is the lightweight topic pub/sub variant.
    """
    try:
        cls = _REGISTRY[plugin]
    except KeyError:
        raise ValidationError(
            f"unknown broker plugin {plugin!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_plugins() -> list[str]:
    """Names of all registered broker plugins."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    # Imported here to avoid circular imports at package-load time.
    from repro.broker.broker import Broker
    from repro.broker.mqtt import MqttStyleBroker

    if "kafka" not in _REGISTRY:
        _REGISTRY["kafka"] = Broker
        Broker.plugin_name = "kafka"
    if "mqtt" not in _REGISTRY:
        _REGISTRY["mqtt"] = MqttStyleBroker
        MqttStyleBroker.plugin_name = "mqtt"


_register_builtins()
