"""Record types exchanged through the broker.

A :class:`Record` is what consumers receive: payload plus full
provenance (topic, partition, offset, timestamps). ``produce_ts`` is
stamped by the producer and ``append_ts`` by the broker, which lets the
monitoring subsystem split end-to-end latency into producer->broker and
broker->consumer components — the linked-metrics capability highlighted
in section III-1 of the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Record:
    """One message as stored in / fetched from a partition log."""

    topic: str
    partition: int
    offset: int
    value: bytes
    key: bytes | None = None
    headers: dict = field(default_factory=dict)
    #: Monotonic time the producer created the record.
    produce_ts: float = 0.0
    #: Monotonic time the broker appended the record.
    append_ts: float = 0.0

    @property
    def size(self) -> int:
        """Approximate wire size in bytes (key + value)."""
        return len(self.value) + (len(self.key) if self.key else 0)

    def __repr__(self) -> str:
        return (
            f"Record({self.topic}/{self.partition}@{self.offset}, "
            f"{len(self.value)}B)"
        )


@dataclass(frozen=True)
class RecordMetadata:
    """Acknowledgement returned to the producer on append."""

    topic: str
    partition: int
    offset: int
    timestamp: float = field(default_factory=time.monotonic)
