"""Record types exchanged through the broker.

A :class:`Record` is what consumers receive: payload plus full
provenance (topic, partition, offset, timestamps). ``produce_ts`` is
stamped by the producer and ``append_ts`` by the broker, which lets the
monitoring subsystem split end-to-end latency into producer->broker and
broker->consumer components — the linked-metrics capability highlighted
in section III-1 of the paper.

``Record`` is a hand-rolled ``__slots__`` class rather than a frozen
dataclass: record construction sits on the broker's hottest path (one
per message in :meth:`PartitionLog.append_many`), and a plain ``__init__``
is ~4x cheaper than ``object.__setattr__``-per-field frozen-dataclass
initialisation. Treat instances as immutable — the broker shares them
between the log and every consumer that fetches them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

_RECORD_FIELDS = (
    "topic",
    "partition",
    "offset",
    "value",
    "key",
    "headers",
    "produce_ts",
    "append_ts",
)


class Record:
    """One message as stored in / fetched from a partition log.

    Treat as immutable: instances are shared between the broker's log
    and all consumers that fetch them.
    """

    __slots__ = _RECORD_FIELDS

    def __init__(
        self,
        topic: str,
        partition: int,
        offset: int,
        value: bytes,
        key: bytes | None = None,
        headers: dict | None = None,
        produce_ts: float = 0.0,
        append_ts: float = 0.0,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.offset = offset
        self.value = value
        self.key = key
        self.headers = {} if headers is None else headers
        #: Monotonic time the producer created the record.
        self.produce_ts = produce_ts
        #: Monotonic time the broker appended the record.
        self.append_ts = append_ts

    @property
    def size(self) -> int:
        """Approximate wire size in bytes (key + value)."""
        return len(self.value) + (len(self.key) if self.key else 0)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f) for f in _RECORD_FIELDS)

    def __repr__(self) -> str:
        return (
            f"Record({self.topic}/{self.partition}@{self.offset}, "
            f"{len(self.value)}B)"
        )


@dataclass(frozen=True)
class RecordMetadata:
    """Acknowledgement returned to the producer on append."""

    topic: str
    partition: int
    offset: int
    timestamp: float = field(default_factory=time.monotonic)


@dataclass(frozen=True)
class BatchMetadata:
    """Acknowledgement for a batched append (one per batch, not per record).

    Offsets within a batch are always contiguous — the whole batch is
    stamped under one partition lock — so ``base_offset`` plus ``count``
    fully describes every record's offset without materialising one
    metadata object per record (the per-record acks are what Kafka's
    produce-response format avoids too).
    """

    topic: str
    partition: int
    base_offset: int
    count: int
    timestamp: float = field(default_factory=time.monotonic)

    @property
    def offsets(self) -> range:
        return range(self.base_offset, self.base_offset + self.count)

    @property
    def last_offset(self) -> int:
        """Offset of the final record in the batch."""
        return self.base_offset + self.count - 1

    def __len__(self) -> int:
        return self.count
