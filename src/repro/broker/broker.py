"""The broker node: topic registry, produce/fetch API, offset store.

One :class:`Broker` instance models the pilot-managed Kafka broker the
paper deploys on the cloud (or edge) tier. Producers and consumers talk
to it through thin client objects (:class:`~repro.broker.producer.Producer`
and :class:`~repro.broker.consumer.Consumer`); the group coordinator for
consumer-group rebalancing also lives here, as it does in Kafka.
"""

from __future__ import annotations

import threading
import time

from repro.broker.errors import ProducerFencedError, TopicExistsError, UnknownTopicError
from repro.broker.group import GroupCoordinator
from repro.broker.message import BatchMetadata, Record, RecordMetadata
from repro.broker.partition import PartitionLog
from repro.broker.storage.log import LogStorageManager
from repro.broker.topic import Topic
from repro.util.ids import new_id
from repro.util.validation import ValidationError, check_non_negative, check_positive


class Broker:
    """In-memory broker with Kafka-like semantics.

    Parameters
    ----------
    name:
        Human-readable broker name (shows up in monitoring output).
    auto_create_topics:
        When true, producing to a missing topic creates it with one
        partition — convenient in examples, disabled in the benchmarks
        where partition counts are explicit.
    log_dir:
        When set, every partition log is durable: segment files under
        ``{log_dir}/{topic}-{partition}/`` with group-commit fsync
        batching, mmap reads of sealed segments, and crash recovery on
        the next boot. All partitions share one flusher thread.
    storage:
        Optional :class:`~repro.broker.storage.log.StorageConfig` tuning
        the durable backend (requires *log_dir*), or a prebuilt
        :class:`~repro.broker.storage.log.LogStorageManager` to share.
    """

    def __init__(
        self,
        name: str | None = None,
        auto_create_topics: bool = False,
        tracer=None,
        log_dir: str | None = None,
        storage=None,
    ) -> None:
        self.name = name or new_id("broker")
        self.auto_create_topics = bool(auto_create_topics)
        self._storage: LogStorageManager | None = None
        self._owns_storage = False
        if isinstance(storage, LogStorageManager):
            self._storage = storage
        elif log_dir is not None:
            self._storage = LogStorageManager(log_dir, config=storage)
            self._owns_storage = True
        elif storage is not None:
            raise ValidationError(
                "storage requires log_dir (StorageConfig) or must be a "
                "LogStorageManager"
            )
        #: Optional :class:`repro.monitoring.Tracer`; when set, appends of
        #: records carrying a propagated trace context record a
        #: ``broker.append`` span (the broker leg of the message's tree).
        self.tracer = tracer
        self._topics: dict[str, Topic] = {}
        self._lock = threading.RLock()
        self._coordinator = GroupCoordinator(self)
        # Committed offsets: (group, topic, partition) -> offset.
        self._committed: dict[tuple, int] = {}
        self._offsets_lock = threading.Lock()
        # Idempotent-producer registry: client name -> producer_id, and
        # producer_id -> current epoch. Re-registering the same client
        # bumps the epoch, fencing any zombie instance still retrying
        # with the old one.
        self._producer_ids: dict[str, int] = {}
        self._producer_epochs: dict[int, int] = {}
        self._producers_lock = threading.Lock()

    # -- topic management -----------------------------------------------------

    def create_topic(
        self,
        name: str,
        num_partitions: int = 1,
        retention_bytes: int = 0,
        exist_ok: bool = False,
    ) -> Topic:
        check_positive("num_partitions", num_partitions)
        with self._lock:
            if name in self._topics:
                if exist_ok:
                    return self._topics[name]
                raise TopicExistsError(name)
            topic = Topic(
                name,
                num_partitions,
                retention_bytes=retention_bytes,
                storage=self._storage,
            )
            self._topics[name] = topic
            return topic

    def delete_topic(self, name: str) -> None:
        with self._lock:
            if name not in self._topics:
                raise UnknownTopicError(name)
            del self._topics[name]
        if self._storage is not None:
            # Close (but keep on disk) the topic's stores; a re-created
            # topic with the same name resumes from the files.
            self._storage.drop_topic(name)

    def topic(self, name: str) -> Topic:
        with self._lock:
            try:
                return self._topics[name]
            except KeyError:
                if self.auto_create_topics:
                    return self.create_topic(name, num_partitions=1)
                raise UnknownTopicError(name) from None

    def list_topics(self) -> list[str]:
        with self._lock:
            return sorted(self._topics)

    def has_topic(self, name: str) -> bool:
        with self._lock:
            return name in self._topics

    # -- idempotent-producer registry ----------------------------------------

    def register_producer(self, client_id: str) -> tuple[int, int]:
        """Register *client_id* for idempotent produce; returns (pid, epoch).

        Calling again with the same client id bumps the epoch — the new
        instance wins, and stale appends from the previous epoch raise
        :class:`~repro.broker.errors.ProducerFencedError`.
        """
        with self._producers_lock:
            pid = self._producer_ids.get(client_id)
            if pid is None:
                pid = len(self._producer_ids)
                self._producer_ids[client_id] = pid
                self._producer_epochs[pid] = 0
            else:
                self._producer_epochs[pid] += 1
            return pid, self._producer_epochs[pid]

    def _check_producer_epoch(self, producer_id: int | None, producer_epoch: int) -> None:
        """Fence stale epochs centrally: a partition only learns a
        producer's epoch on first contact, so a zombie writing to a fresh
        partition would otherwise slip past the per-partition check."""
        if producer_id is None:
            return
        with self._producers_lock:
            current = self._producer_epochs.get(producer_id)
        if current is not None and producer_epoch < current:
            raise ProducerFencedError(producer_id, producer_epoch, current)

    # -- data path ---------------------------------------------------------------

    def append(
        self,
        topic: str,
        partition: int,
        value: bytes,
        key: bytes | None = None,
        headers: dict | None = None,
        produce_ts: float | None = None,
        producer_id: int | None = None,
        producer_epoch: int = 0,
        sequence: int | None = None,
        acks: str | None = None,
    ) -> RecordMetadata:
        """Append a record; returns its metadata (offset assignment).

        ``acks`` is accepted for surface uniformity: an unreplicated
        broker acknowledges at append time regardless (``"all"`` and
        ``"leader"`` coincide when the leader is the only replica), so
        the knob only changes behavior on a replicated
        :class:`~repro.broker.cluster.ShardBroker`.
        """
        self._check_producer_epoch(producer_id, producer_epoch)
        log = self.topic(topic).partition(partition)
        start = time.monotonic() if self.tracer is not None else 0.0
        record = log.append(
            value,
            key=key,
            headers=headers,
            produce_ts=produce_ts,
            producer_id=producer_id,
            producer_epoch=producer_epoch,
            sequence=sequence,
        )
        if self.tracer is not None:
            self._trace_appends((record,), topic, partition, start)
        return RecordMetadata(topic=topic, partition=partition, offset=record.offset)

    def append_many(
        self,
        topic: str,
        partition: int,
        values,
        keys=None,
        headers=None,
        produce_ts=None,
        producer_id: int | None = None,
        producer_epoch: int = 0,
        base_sequence: int | None = None,
        acks: str | None = None,
    ) -> BatchMetadata:
        """Append a batch to one partition under a single log lock.

        See :meth:`PartitionLog.append_many` for the parameter shapes.
        Returns one :class:`BatchMetadata` for the whole batch (offsets
        within a batch are contiguous). With idempotent-producer fields a
        replayed batch acks with its original offsets and is not
        re-appended. ``acks`` only changes behavior on a replicated
        shard (see :meth:`append`).
        """
        self._check_producer_epoch(producer_id, producer_epoch)
        log = self.topic(topic).partition(partition)
        start = time.monotonic() if self.tracer is not None else 0.0
        records = log.append_many(
            values,
            keys=keys,
            headers=headers,
            produce_ts=produce_ts,
            producer_id=producer_id,
            producer_epoch=producer_epoch,
            base_sequence=base_sequence,
        )
        if self.tracer is not None and records:
            self._trace_appends(records, topic, partition, start)
        if not records:
            return BatchMetadata(
                topic=topic, partition=partition, base_offset=log.latest_offset, count=0
            )
        return BatchMetadata(
            topic=topic,
            partition=partition,
            base_offset=records[0].offset,
            count=len(records),
        )

    def _trace_appends(self, records, topic: str, partition: int, start: float) -> None:
        """Record a ``broker.append`` span for each record that arrived
        with a propagated trace context in its headers."""
        end = time.monotonic()
        hops = []
        for record in records:
            headers = record.headers
            ctx = headers.get("trace") if headers else None
            if ctx:
                hops.append(
                    (ctx, {"topic": topic, "partition": partition, "offset": record.offset})
                )
        if hops:
            # One batched recording per append batch (one tracer lock),
            # not one span-object lifecycle per record.
            self.tracer.record_hops(
                "broker.append", hops, site=self.name, start=start, end=end
            )

    def partition_log(self, topic: str, partition: int) -> PartitionLog:
        """Direct handle to one partition's log (in-process brokers only).

        Consumers use it to register cross-partition wakeup events;
        remote broker proxies do not expose it.
        """
        return self.topic(topic).partition(partition)

    def fetch(
        self,
        topic: str,
        partition: int,
        offset: int,
        max_records: int = 64,
        timeout: float = 0.0,
        min_bytes: int = 1,
    ) -> list[Record]:
        """Fetch records from one partition starting at *offset*.

        ``timeout``/``min_bytes`` implement the long-poll contract: the
        fetch parks on the partition's condition variable until at least
        *min_bytes* of payload are available (or the deadline passes),
        instead of returning empty for the caller to re-poll.
        """
        return self.topic(topic).partition(partition).fetch(
            offset, max_records=max_records, timeout=timeout, min_bytes=min_bytes
        )

    def earliest_offset(self, topic: str, partition: int) -> int:
        return self.topic(topic).partition(partition).earliest_offset

    def latest_offset(self, topic: str, partition: int) -> int:
        return self.topic(topic).partition(partition).latest_offset

    # -- committed offsets ----------------------------------------------------------

    def commit_offset(self, group: str, topic: str, partition: int, offset: int) -> None:
        check_non_negative("offset", offset)
        self.topic(topic).partition(partition)  # validate existence
        with self._offsets_lock:
            key = (group, topic, partition)
            # Commits are monotonic; a stale commit from a pre-rebalance
            # consumer must not rewind the group's progress.
            self._committed[key] = max(self._committed.get(key, 0), int(offset))

    def committed_offset(self, group: str, topic: str, partition: int) -> int | None:
        with self._offsets_lock:
            return self._committed.get((group, topic, partition))

    def committed_offsets(self, group: str | None = None) -> dict:
        """Snapshot of committed offsets.

        With *group*, returns ``{(topic, partition): offset}`` for that
        group; without, ``{(group, topic, partition): offset}`` for all.
        """
        with self._offsets_lock:
            if group is None:
                return dict(self._committed)
            return {
                (t, p): off
                for (g, t, p), off in self._committed.items()
                if g == group
            }

    def consumer_lag(self, group: str) -> dict:
        """Per-partition consumer lag for *group*: ``{(topic, partition): lag}``.

        Lag is the broker's end-offset minus the group's committed offset
        — the number of appended records the group has not durably
        acknowledged.  Partitions the group subscribes to but has never
        committed count from their earliest retained offset, so a
        consumer that is connected but has made no progress shows the
        full backlog rather than 0.
        """
        committed = self.committed_offsets(group)
        partitions = set(committed)
        for topic_name in self._coordinator.group_topics(group):
            try:
                topic = self.topic(topic_name)
            except UnknownTopicError:
                continue
            partitions.update((topic_name, p) for p in topic.partitions)
        lag: dict[tuple, int] = {}
        for topic_name, p in partitions:
            try:
                log = self.topic(topic_name).partition(p)
            except UnknownTopicError:
                continue
            base = committed.get((topic_name, p))
            if base is None:
                base = log.earliest_offset
            lag[(topic_name, p)] = max(0, log.latest_offset - base)
        return lag

    def partition_depths(self) -> dict:
        """``{(topic, partition): {"depth": n, "end_offset": o, "bytes": b}}``
        for every partition — the sampler's per-partition gauge source."""
        with self._lock:
            topics = list(self._topics.items())
        out: dict[tuple, dict] = {}
        for name, topic in topics:
            for p in topic.partitions:
                log = topic.partition(p)
                out[(name, p)] = {
                    "depth": len(log),
                    "end_offset": log.latest_offset,
                    "bytes": log.size_bytes,
                }
        return out

    # -- coordination ------------------------------------------------------------------

    @property
    def coordinator(self) -> GroupCoordinator:
        return self._coordinator

    # -- monitoring --------------------------------------------------------------------

    def stats(self) -> dict:
        """Broker-level counters for monitoring/bottleneck analysis."""
        with self._lock:
            topics = {}
            for name, topic in self._topics.items():
                topics[name] = {
                    "partitions": topic.num_partitions,
                    "records_in": topic.total_appended,
                    "bytes_in": topic.total_bytes_in,
                    "bytes_retained": topic.size_bytes,
                    "duplicates_dropped": topic.duplicates_dropped,
                    "long_polls_parked": topic.long_polls_parked,
                }
        out = {
            "broker": self.name,
            "topics": topics,
            "duplicates_dropped": sum(t["duplicates_dropped"] for t in topics.values()),
            "long_polls_parked": sum(t["long_polls_parked"] for t in topics.values()),
            "members_evicted": self._coordinator.members_evicted,
        }
        if self._storage is not None:
            out["storage"] = self._storage.stats()
        return out

    @property
    def storage(self) -> LogStorageManager | None:
        """The durable-log manager, or ``None`` on an in-memory broker."""
        return self._storage

    def close(self) -> None:
        """Flush and release durable storage (no-op for in-memory brokers).

        Safe to call repeatedly; a shared (caller-provided) manager is
        left running for its other owners.
        """
        if self._storage is not None and self._owns_storage:
            self._storage.close()

    def __repr__(self) -> str:
        return f"Broker({self.name!r}, topics={len(self._topics)})"
