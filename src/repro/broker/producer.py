"""Producer client: serialization, partitioning, produce metrics.

Producers are cheap, thread-compatible objects bound to one broker. The
partitioner decides which partition a record lands on; the paper's
experiments pin one partition per edge device, which corresponds to an
explicit ``partition=`` argument (each simulated device produces only to
its own partition).
"""

from __future__ import annotations

import random
import time
import zlib
from typing import Any

from repro.broker.broker import Broker
from repro.broker.errors import is_retriable
from repro.broker.message import BatchMetadata, RecordMetadata
from repro.broker.serde import BytesSerde, Serde
from repro.util.ids import new_id
from repro.util.validation import ValidationError, check_non_negative, check_positive


class Partitioner:
    """Chooses the partition for a record when none is given explicitly."""

    def select(self, key: bytes | None, num_partitions: int) -> int:
        raise NotImplementedError


class KeyHashPartitioner(Partitioner):
    """Stable key hash (crc32, like Kafka's murmur2 role); round-robin
    for keyless records."""

    def __init__(self) -> None:
        self._counter = 0

    def select(self, key: bytes | None, num_partitions: int) -> int:
        if key is None:
            self._counter += 1
            return (self._counter - 1) % num_partitions
        return zlib.crc32(key) % num_partitions


class RoundRobinPartitioner(Partitioner):
    """Strict rotation regardless of key."""

    def __init__(self) -> None:
        self._counter = 0

    def select(self, key: bytes | None, num_partitions: int) -> int:
        p = self._counter % num_partitions
        self._counter += 1
        return p


class StickyPartitioner(Partitioner):
    """Stick to one partition for a batch of records, then rotate.

    Mimics Kafka's sticky partitioner, which improves batching for
    high-rate keyless producers.
    """

    def __init__(self, batch_size: int = 16) -> None:
        check_non_negative("batch_size", batch_size)
        self._batch_size = max(1, int(batch_size))
        self._current = 0
        self._sent_in_batch = 0

    def select(self, key: bytes | None, num_partitions: int) -> int:
        if key is not None:
            return zlib.crc32(key) % num_partitions
        if self._sent_in_batch >= self._batch_size:
            self._current = (self._current + 1) % num_partitions
            self._sent_in_batch = 0
        self._sent_in_batch += 1
        return self._current % num_partitions


class Producer:
    """Client for publishing records to a broker.

    >>> broker = Broker(); _ = broker.create_topic("t", 2)
    >>> producer = Producer(broker)
    >>> md = producer.send("t", b"payload", partition=1)
    >>> (md.partition, md.offset)
    (1, 0)

    Delivery knobs (Kafka-shaped):

    - ``acks=1`` (default, alias ``"leader"``): the send blocks for the
      leader's ack; failures raise (after any retries). ``acks=0``:
      fire-and-forget — transport failures are swallowed (counted in
      ``sends_failed``) and ``None`` is returned. ``acks="all"``: the
      broker additionally holds the ack until every in-sync replica
      holds the records (high-watermark advance) — on an unreplicated
      broker this coincides with ``acks=1``.
    - ``retries``: transient failures (``RetriableError``,
      ``ConnectionError``, timeouts) are retried up to this many times
      with exponential backoff and jitter starting at
      ``retry_backoff_ms``.
    - ``enable_idempotence`` (default: on whenever ``retries > 0``): the
      producer registers with the broker for a ``(producer_id, epoch)``
      identity and stamps every append with a per-partition sequence
      number, so a retried batch that *did* land the first time is
      deduplicated broker-side — at-least-once retries, exactly-once log
      offsets.
    """

    #: Backoff growth cap: sleeps never exceed this many seconds.
    MAX_BACKOFF_S = 2.0

    def __init__(
        self,
        broker: Broker | None = None,
        serde: Serde | None = None,
        partitioner: Partitioner | None = None,
        client_id: str | None = None,
        acks: int | str = 1,
        retries: int = 0,
        retry_backoff_ms: float = 100.0,
        enable_idempotence: bool | None = None,
        tracer=None,
        trace_site: str = "",
        bootstrap=None,
    ) -> None:
        if acks not in (0, 1, "leader", "all"):
            raise ValidationError(
                f"acks must be 0, 1, 'leader' or 'all', got {acks!r}"
            )
        check_non_negative("retries", retries)
        check_non_negative("retry_backoff_ms", retry_backoff_ms)
        if (broker is None) == (bootstrap is None):
            raise ValidationError("provide exactly one of broker= or bootstrap=")
        # A bootstrap list connects to whatever answers first — a sharded
        # cluster or a plain single broker — and the producer owns (and
        # closes) the resulting client handle.
        self._owns_broker = bootstrap is not None
        if bootstrap is not None:
            from repro.broker.cluster import connect_bootstrap

            broker = connect_bootstrap(bootstrap)
        self._broker = broker
        self._serde = serde or BytesSerde()
        self._partitioner = partitioner or KeyHashPartitioner()
        self.client_id = client_id or new_id("producer")
        self.acks = acks if isinstance(acks, str) else int(acks)
        # What rides to the broker: only "all" changes broker behavior
        # (0/1/"leader" all ack at the leader), and omitting the field
        # keeps the wire schema old servers already understand.
        self._wire_acks = "all" if self.acks == "all" else None
        self.retries = int(retries)
        self.retry_backoff_ms = float(retry_backoff_ms)
        self.idempotent = (
            bool(enable_idempotence) if enable_idempotence is not None else retries > 0
        )
        # Idempotent identity, assigned lazily on the first send so plain
        # producers never pay the registration round-trip.
        self._pid: int | None = None
        self._epoch = 0
        #: (topic, partition) -> next sequence number.
        self._sequences: dict[tuple, int] = {}
        # Deterministic per-producer jitter source (stable across runs
        # for a fixed client_id).
        self._jitter = random.Random(zlib.crc32(self.client_id.encode()))
        #: Optional :class:`repro.monitoring.Tracer`. When set, every send
        #: opens a ``producer.send`` span (child of any context already in
        #: the record's headers) and injects its context into the headers,
        #: so the broker and consumer legs attach to the same trace.
        self._tracer = tracer
        self._trace_site = trace_site or self.client_id
        # Produce-side metrics.
        self.records_sent = 0
        self.bytes_sent = 0
        self.produce_retries = 0
        self.sends_failed = 0
        self._accumulators: list["BatchAccumulator"] = []
        self._closed = False

    @property
    def broker(self) -> Broker:
        return self._broker

    # -- idempotence ------------------------------------------------------

    def _ensure_registered(self) -> None:
        if self._pid is None:
            self._pid, self._epoch = self._call_with_retries(
                lambda: self._broker.register_producer(self.client_id)
            )

    def _next_sequence(self, topic: str, partition: int, count: int) -> int:
        key = (topic, partition)
        seq = self._sequences.get(key, 0)
        self._sequences[key] = seq + count
        return seq

    def _rollback_sequence(self, topic: str, partition: int, count: int) -> None:
        self._sequences[(topic, partition)] -= count

    # -- retry engine ------------------------------------------------------

    def _backoff_s(self, attempt: int) -> float:
        base = (self.retry_backoff_ms / 1000.0) * (2 ** attempt)
        return min(base, self.MAX_BACKOFF_S) * (0.5 + self._jitter.random())

    # -- tracing -----------------------------------------------------------

    def _trace_send(self, headers, count: int):
        """Open one ``producer.send`` span per record and inject contexts.

        Returns ``(spans, headers)`` where *headers* is a per-record list
        carrying each span's context. ``headers`` may come in as ``None``,
        one dict broadcast to the batch, or a per-record sequence.
        """
        hdr_seq = (
            list(headers)
            if isinstance(headers, (list, tuple))
            else [headers] * count
        )
        spans, out_headers = [], []
        for h in hdr_seq:
            span = self._tracer.start_span(
                "producer.send",
                parent=self._tracer.extract(h),
                site=self._trace_site,
            )
            if span.recording:
                h = dict(h) if h else {}
                self._tracer.inject(span, h)
            spans.append(span)
            out_headers.append(h)
        return spans, out_headers

    @staticmethod
    def _finish_spans(spans, error: str | None = None) -> None:
        if not spans:
            return
        for span in spans:
            if error is not None:
                span.set_attr("error", error)
            span.finish()

    def _call_with_retries(self, fn):
        """Run *fn*, retrying transient failures with backoff + jitter."""
        attempt = 0
        while True:
            try:
                return fn()
            except Exception as exc:
                if attempt >= self.retries or not is_retriable(exc):
                    raise
                self.produce_retries += 1
                delay = self._backoff_s(attempt)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1

    def send(
        self,
        topic: str,
        value: Any,
        key: bytes | None = None,
        partition: int | None = None,
        headers: dict | None = None,
    ) -> RecordMetadata | None:
        """Serialize and append one record; returns its metadata.

        With ``acks=0`` transport failures return ``None`` instead of
        raising (fire-and-forget).
        """
        self._check_open()
        payload = self._serde.serialize(value)
        if partition is None:
            num = self._broker.topic(topic).num_partitions
            partition = self._partitioner.select(key, num)
        produce_ts = time.monotonic()
        spans = None
        if self._tracer is not None:
            spans, hdr_list = self._trace_send(headers, 1)
            headers = hdr_list[0]
        if self.idempotent:
            self._ensure_registered()
            sequence = self._next_sequence(topic, partition, 1)
        else:
            sequence = None
        # Stamp acks only when it changes broker behavior, so brokers
        # (and broker-shaped proxies) without the knob stay compatible.
        extra = {} if self._wire_acks is None else {"acks": self._wire_acks}
        try:
            md = self._call_with_retries(
                lambda: self._broker.append(
                    topic,
                    partition,
                    payload,
                    key=key,
                    headers=headers,
                    produce_ts=produce_ts,
                    producer_id=self._pid,
                    producer_epoch=self._epoch,
                    sequence=sequence,
                    **extra,
                )
            )
        except Exception as exc:
            self._finish_spans(spans, error=type(exc).__name__)
            if sequence is not None:
                self._rollback_sequence(topic, partition, 1)
            self.sends_failed += 1
            if self.acks == 0:
                return None
            raise
        self._finish_spans(spans)
        self.records_sent += 1
        self.bytes_sent += len(payload)
        return md

    def send_many(
        self,
        topic: str,
        values,
        keys=None,
        partition: int | None = None,
        headers=None,
    ) -> BatchMetadata | None:
        """Serialize and append a batch of records in one broker call.

        The whole batch lands on **one** partition: either the explicit
        ``partition`` or one chosen once by the partitioner (per-record
        key routing would split the batch — use :class:`BatchAccumulator`
        for that). ``keys`` are stored with the records (compaction) but
        do not route. Against a :class:`~repro.broker.remote.RemoteBroker`
        this is a single socket round-trip. With ``acks=0`` transport
        failures return ``None`` instead of raising.
        """
        self._check_open()
        payloads = [self._serde.serialize(v) for v in values]
        if not payloads:
            raise ValidationError("send_many requires at least one value")
        if partition is None:
            num = self._broker.topic(topic).num_partitions
            partition = self._partitioner.select(None, num)
        spans = None
        if self._tracer is not None:
            spans, headers = self._trace_send(headers, len(payloads))
        if self.idempotent:
            self._ensure_registered()
            base_sequence = self._next_sequence(topic, partition, len(payloads))
        else:
            base_sequence = None
        extra = {} if self._wire_acks is None else {"acks": self._wire_acks}
        try:
            md = self._call_with_retries(
                lambda: self._broker.append_many(
                    topic,
                    partition,
                    payloads,
                    keys=keys,
                    headers=headers,
                    produce_ts=time.monotonic(),
                    producer_id=self._pid,
                    producer_epoch=self._epoch,
                    base_sequence=base_sequence,
                    **extra,
                )
            )
        except Exception as exc:
            self._finish_spans(spans, error=type(exc).__name__)
            if base_sequence is not None:
                self._rollback_sequence(topic, partition, len(payloads))
            self.sends_failed += 1
            if self.acks == 0:
                return None
            raise
        self._finish_spans(spans)
        self.records_sent += md.count
        self.bytes_sent += sum(len(p) for p in payloads)
        return md

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        """Flush every registered :class:`BatchAccumulator` buffer."""
        for accumulator in self._accumulators:
            accumulator.flush()

    def close(self) -> None:
        """Flush buffered records, then mark the producer closed.

        Closing without flushing would silently lose whatever linger
        batches are still sitting in attached accumulators.
        """
        if self._closed:
            return
        try:
            self.flush()
        finally:
            self._closed = True
            if self._owns_broker:
                close = getattr(self._broker, "close", None)
                if close is not None:
                    close()

    def __enter__(self) -> "Producer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("producer is closed")

    def stats(self) -> dict:
        return {
            "client_id": self.client_id,
            "records_sent": self.records_sent,
            "bytes_sent": self.bytes_sent,
            "produce_retries": self.produce_retries,
            "sends_failed": self.sends_failed,
            "idempotent": self.idempotent,
        }


class BatchAccumulator:
    """Linger-style client-side batching on top of :class:`Producer`.

    Records are buffered per ``(topic, partition)`` — keyed records are
    routed by the producer's partitioner at :meth:`add` time — and
    flushed as one :meth:`Producer.send_many` batch whenever a buffer
    reaches ``batch_records``. Call :meth:`flush` (or leave the context
    manager) to push out partial batches. This is the shape of Kafka's
    record accumulator, minus the background linger thread: flushing is
    caller-driven, so producers embedded in task loops control exactly
    when they pay the broker round-trip.
    """

    def __init__(self, producer: Producer, batch_records: int = 64) -> None:
        check_positive("batch_records", batch_records)
        self._producer = producer
        self._batch_records = int(batch_records)
        #: (topic, partition) -> [(value, key, headers), ...]
        self._buffers: dict[tuple, list] = {}
        self.batches_flushed = 0
        # Register with the producer so Producer.close() drains buffered
        # records instead of silently losing them.
        producer._accumulators.append(self)

    def add(
        self,
        topic: str,
        value,
        key: bytes | None = None,
        partition: int | None = None,
        headers: dict | None = None,
    ) -> BatchMetadata | None:
        """Buffer one record; returns batch metadata if a flush triggered."""
        if partition is None:
            num = self._producer._broker.topic(topic).num_partitions
            partition = self._producer._partitioner.select(key, num)
        buffer = self._buffers.setdefault((topic, partition), [])
        buffer.append((value, key, headers))
        if len(buffer) >= self._batch_records:
            return self._flush_one(topic, partition)
        return None

    @property
    def pending_records(self) -> int:
        return sum(len(b) for b in self._buffers.values())

    def _flush_one(self, topic: str, partition: int) -> BatchMetadata | None:
        buffer = self._buffers.pop((topic, partition), None)
        if not buffer:
            return None
        values = [v for v, _, _ in buffer]
        keys = [k for _, k, _ in buffer]
        headers = [h for _, _, h in buffer]
        md = self._producer.send_many(
            topic, values, keys=keys, partition=partition, headers=headers
        )
        self.batches_flushed += 1
        return md

    def flush(self) -> list[BatchMetadata]:
        """Flush every partial buffer; returns one metadata per batch."""
        out = []
        for topic, partition in list(self._buffers):
            md = self._flush_one(topic, partition)
            if md is not None:
                out.append(md)
        return out

    def __enter__(self) -> "BatchAccumulator":
        return self

    def __exit__(self, *exc) -> None:
        self.flush()
