"""Producer client: serialization, partitioning, produce metrics.

Producers are cheap, thread-compatible objects bound to one broker. The
partitioner decides which partition a record lands on; the paper's
experiments pin one partition per edge device, which corresponds to an
explicit ``partition=`` argument (each simulated device produces only to
its own partition).
"""

from __future__ import annotations

import time
import zlib
from typing import Any

from repro.broker.broker import Broker
from repro.broker.message import RecordMetadata
from repro.broker.serde import BytesSerde, Serde
from repro.util.ids import new_id
from repro.util.validation import check_non_negative


class Partitioner:
    """Chooses the partition for a record when none is given explicitly."""

    def select(self, key: bytes | None, num_partitions: int) -> int:
        raise NotImplementedError


class KeyHashPartitioner(Partitioner):
    """Stable key hash (crc32, like Kafka's murmur2 role); round-robin
    for keyless records."""

    def __init__(self) -> None:
        self._counter = 0

    def select(self, key: bytes | None, num_partitions: int) -> int:
        if key is None:
            self._counter += 1
            return (self._counter - 1) % num_partitions
        return zlib.crc32(key) % num_partitions


class RoundRobinPartitioner(Partitioner):
    """Strict rotation regardless of key."""

    def __init__(self) -> None:
        self._counter = 0

    def select(self, key: bytes | None, num_partitions: int) -> int:
        p = self._counter % num_partitions
        self._counter += 1
        return p


class StickyPartitioner(Partitioner):
    """Stick to one partition for a batch of records, then rotate.

    Mimics Kafka's sticky partitioner, which improves batching for
    high-rate keyless producers.
    """

    def __init__(self, batch_size: int = 16) -> None:
        check_non_negative("batch_size", batch_size)
        self._batch_size = max(1, int(batch_size))
        self._current = 0
        self._sent_in_batch = 0

    def select(self, key: bytes | None, num_partitions: int) -> int:
        if key is not None:
            return zlib.crc32(key) % num_partitions
        if self._sent_in_batch >= self._batch_size:
            self._current = (self._current + 1) % num_partitions
            self._sent_in_batch = 0
        self._sent_in_batch += 1
        return self._current % num_partitions


class Producer:
    """Client for publishing records to a broker.

    >>> broker = Broker(); _ = broker.create_topic("t", 2)
    >>> producer = Producer(broker)
    >>> md = producer.send("t", b"payload", partition=1)
    >>> (md.partition, md.offset)
    (1, 0)
    """

    def __init__(
        self,
        broker: Broker,
        serde: Serde | None = None,
        partitioner: Partitioner | None = None,
        client_id: str | None = None,
    ) -> None:
        self._broker = broker
        self._serde = serde or BytesSerde()
        self._partitioner = partitioner or KeyHashPartitioner()
        self.client_id = client_id or new_id("producer")
        # Produce-side metrics.
        self.records_sent = 0
        self.bytes_sent = 0

    @property
    def broker(self) -> Broker:
        return self._broker

    def send(
        self,
        topic: str,
        value: Any,
        key: bytes | None = None,
        partition: int | None = None,
        headers: dict | None = None,
    ) -> RecordMetadata:
        """Serialize and append one record; returns its metadata."""
        payload = self._serde.serialize(value)
        if partition is None:
            num = self._broker.topic(topic).num_partitions
            partition = self._partitioner.select(key, num)
        produce_ts = time.monotonic()
        md = self._broker.append(
            topic,
            partition,
            payload,
            key=key,
            headers=headers,
            produce_ts=produce_ts,
        )
        self.records_sent += 1
        self.bytes_sent += len(payload)
        return md

    def stats(self) -> dict:
        return {
            "client_id": self.client_id,
            "records_sent": self.records_sent,
            "bytes_sent": self.bytes_sent,
        }
