"""Reactor broker server: one event loop, O(1) threads, 1k+ connections.

The thread-per-connection server (:class:`repro.broker.remote.ThreadedBrokerServer`)
spends one OS thread per client plus one side thread per parked
long-poll — a model that collapses well before the connection counts an
edge deployment needs. This module replaces the server half of the wire
path with a ``selectors``-based reactor:

* **One I/O thread** multiplexes every client socket with non-blocking
  reads and writes. Inbound bytes feed a per-connection incremental
  :class:`~repro.broker.wire.FrameDecoder`; outbound frames accumulate
  in a per-connection write buffer that drains as the socket allows.
* **A small bounded worker pool** executes op dispatch (JSON build,
  base64, broker calls) off the loop. Each connection is a *strand*: its
  requests run one at a time in arrival order — per-connection append
  order is preserved, which idempotent producer sequence numbers rely
  on — while different connections run in parallel across workers.
* **Long-poll fetches park as reactor state**, not threads. A parkable
  fetch is probed non-blockingly (:meth:`PartitionLog.poll_fetch`); if
  unsatisfied it lands in a parked-request table keyed by
  ``(topic, partition)`` with a deadline heap. The partition's existing
  waiter hook (``register_waiter``) takes a duck-typed waker whose
  ``set()`` nudges the loop through a self-pipe, so the append path did
  not change at all. A parked fetch therefore costs one table entry —
  no thread, no stack.

The wire format and the client (:class:`repro.broker.remote.RemoteBroker`)
are untouched: correlation-id pipelining, per-op semantics, deadlines,
and reconnect/replay behavior all hold. Frames still carry the optional
``"trace"`` field; a ``server.<op>`` span covers dispatch (and for a
parked fetch, the full park duration — same as the old side thread).

Tuning knobs: ``num_workers`` (dispatch parallelism; the default of 4
is plenty for a GIL-bound op table), ``max_buffered_bytes`` (per-
connection outbound cap — a slow reader's reads are paused until its
buffer drains below half the cap, bounding per-connection memory).
"""

from __future__ import annotations

import heapq
import itertools
import queue
import selectors
import socket
import threading
import time
from collections import deque
from functools import partial

from repro.broker.broker import Broker
from repro.broker.wire import (
    FrameDecoder,
    encode_frame,
    execute_op,
    format_fetch,
    is_parkable,
)

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE
_RECV_CHUNK = 262144


class _Conn:
    """Per-connection reactor state (loop-owned except where noted)."""

    __slots__ = (
        "sock",
        "fd",
        "decoder",
        "outbuf",
        "outbox",
        "lock",
        "pending",
        "scheduled",
        "closed",
        "read_paused",
        "mask",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.decoder = FrameDecoder()
        #: Loop-owned outbound byte buffer, drained as the socket allows.
        self.outbuf = bytearray()
        #: Worker -> loop handoff: encoded response buffers (under lock).
        self.outbox: deque = deque()
        self.lock = threading.Lock()
        #: Strand queue: this connection's requests, executed in order.
        self.pending: deque = deque()
        self.scheduled = False
        self.closed = False
        self.read_paused = False
        self.mask = 0


class _ParkedFetch:
    """A long-poll fetch parked as reactor state instead of a thread."""

    __slots__ = (
        "conn", "op", "cid", "span", "log",
        "topic", "partition", "offset", "max_records", "min_bytes",
        "deadline", "done",
    )

    def __init__(self, conn, op, cid, span, request) -> None:
        self.conn = conn
        self.op = op
        self.cid = cid
        self.span = span
        self.log = None
        self.topic = request.get("topic")
        self.partition = request.get("partition")
        self.offset = request.get("offset")
        self.max_records = request.get("max_records", 64)
        self.min_bytes = request.get("min_bytes", 1)
        self.deadline = 0.0
        self.done = False


class _PartitionWaker:
    """Duck-typed waiter handed to ``PartitionLog.register_waiter``.

    The log calls ``set()`` on every append (it expects a
    ``threading.Event``); here that marks the partition key dirty and
    nudges the reactor through its self-pipe — the append path needs no
    knowledge of the reactor at all.
    """

    __slots__ = ("_server", "_key")

    def __init__(self, server: "ReactorBrokerServer", key: tuple) -> None:
        self._server = server
        self._key = key

    def set(self) -> None:
        server = self._server
        with server._wake_lock:
            server._pending_wakes.add(self._key)
        server._wake()


class ReactorBrokerServer:
    """Serves an in-process broker over TCP from one event loop.

    Drop-in replacement for the threaded server: same constructor, same
    public counters (``connections_served`` / ``requests_served`` /
    ``op_counts``), same wire behavior. Exported from
    ``repro.broker.remote`` as ``BrokerServer``.
    """

    def __init__(
        self,
        broker: Broker | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        tracer=None,
        num_workers: int = 4,
        max_buffered_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        self.broker = broker if broker is not None else Broker()
        #: Optional :class:`repro.monitoring.Tracer`; frames carrying the
        #: optional ``"trace"`` field get a ``server.<op>`` span.
        self._tracer = tracer
        self.num_workers = max(1, int(num_workers))
        #: Per-connection outbound buffer cap: beyond it the connection's
        #: reads pause until the buffer drains below half (backpressure).
        self.max_buffered_bytes = int(max_buffered_bytes)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1024)
        self.host, self.port = self._listener.getsockname()

        self.connections_served = 0
        self.requests_served = 0
        #: op name -> number of requests dispatched (batching telemetry).
        self.op_counts: dict[str, int] = {}
        self._counts_lock = threading.Lock()
        #: Seconds the loop spent processing its last wakeup — a growing
        #: value means the loop (not the sockets) is the bottleneck.
        self.reactor_loop_lag = 0.0

        self._selector: selectors.DefaultSelector | None = None
        self._conns: dict[int, _Conn] = {}
        self._parked: dict[tuple, list[_ParkedFetch]] = {}
        self._wakers: dict[tuple, _PartitionWaker] = {}
        self._deadlines: list = []
        self._park_seq = itertools.count()
        self._wake_lock = threading.Lock()
        self._pending_wakes: set = set()
        self._dirty: set = set()
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._workers: list[threading.Thread] = []
        self._reactor_thread: threading.Thread | None = None
        self._stopping = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ReactorBrokerServer":
        if self._reactor_thread is not None:
            raise RuntimeError("server already started")
        # Shard brokers keep a handle on their server so the reactor's
        # gauges can be served over the wire (``server_metrics``).
        attach = getattr(self.broker, "attach_server", None)
        if attach is not None:
            attach(self)
        self._stopping = False
        self._listener.setblocking(False)
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, _READ, "accept")
        self._selector.register(self._wake_r, _READ, "wake")
        for i in range(self.num_workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"broker-worker-{i}:{self.port}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        self._reactor_thread = threading.Thread(
            target=self._run, name=f"broker-reactor:{self.port}", daemon=True
        )
        self._reactor_thread.start()
        return self

    def stop(self) -> None:
        """Deterministic shutdown: close every live connection, drain the
        parked-request table, join the reactor and every worker."""
        if self._reactor_thread is not None:
            self._stopping = True
            self._wake()
            self._reactor_thread.join(timeout=10)
            self._reactor_thread = None
        else:
            try:
                self._listener.close()
            except OSError:
                pass
        for _ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=5)
        self._workers = []

    def __enter__(self) -> "ReactorBrokerServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def address(self) -> tuple:
        return (self.host, self.port)

    @property
    def connections_active(self) -> int:
        """Live client connections (gauge)."""
        return len(self._conns)

    @property
    def parked_fetches(self) -> int:
        """Long-poll fetches currently parked in the reactor (gauge)."""
        return sum(len(b) for b in self._parked.values())

    def metrics(self) -> dict:
        """Server-internals snapshot for the telemetry sampler."""
        return {
            "connections_active": self.connections_active,
            "parked_fetches": self.parked_fetches,
            "reactor_loop_lag_s": self.reactor_loop_lag,
            "requests_served": self.requests_served,
            "connections_served": self.connections_served,
        }

    # -- the loop -----------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError, AttributeError):
            pass  # pipe full (loop will wake anyway) or already closed

    def _run(self) -> None:
        selector = self._selector
        try:
            while not self._stopping:
                timeout = self._next_timeout()
                events = selector.select(timeout)
                t0 = time.monotonic()
                for key, mask in events:
                    data = key.data
                    if data == "accept":
                        self._on_accept()
                    elif data == "wake":
                        try:
                            while self._wake_r.recv(4096):
                                pass
                        except (BlockingIOError, OSError):
                            pass
                    else:
                        if mask & _READ:
                            self._on_readable(data)
                        if mask & _WRITE and not data.closed:
                            self._pump_out(data)
                self._flush_dirty()
                self._process_wakes()
                self._process_deadlines()
                self.reactor_loop_lag = time.monotonic() - t0
        finally:
            self._teardown()

    def _next_timeout(self) -> float:
        heap = self._deadlines
        while heap and heap[0][2].done:
            heapq.heappop(heap)
        if not heap:
            return 0.5
        return min(0.5, max(0.0, heap[0][0] - time.monotonic()))

    def _teardown(self) -> None:
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        for obj in (self._listener, self._wake_r, self._wake_w):
            try:
                obj.close()
            except (OSError, AttributeError):
                pass
        self._selector.close()
        self._selector = None
        self._parked.clear()
        self._wakers.clear()
        self._deadlines.clear()

    # -- connections --------------------------------------------------------

    def _on_accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Conn(sock)
            self._conns[conn.fd] = conn
            self.connections_served += 1
            conn.mask = _READ
            self._selector.register(sock, _READ, conn)

    def _close_conn(self, conn: _Conn) -> None:
        if conn.closed:
            return
        with conn.lock:
            conn.closed = True
            conn.outbox.clear()
            conn.pending.clear()
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._conns.pop(conn.fd, None)
        with self._wake_lock:
            self._dirty.discard(conn)
        # Drop this connection's parked fetches; finish their spans so a
        # traced run does not leak unrecorded server spans.
        for key in list(self._parked):
            for entry in [e for e in self._parked.get(key, ()) if e.conn is conn]:
                self._unpark(entry)
                if entry.span is not None:
                    entry.span.set_attr("error", "ConnectionClosed")
                    entry.span.finish()

    def _on_readable(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(_RECV_CHUNK)
        except BlockingIOError:
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            self._close_conn(conn)
            return
        conn.decoder.feed(data)
        try:
            while True:
                frame = conn.decoder.next_frame()
                if frame is None:
                    break
                request, blobs = frame
                if is_parkable(request):
                    # Long-polls never occupy a worker: probe, then park
                    # as loop state or complete through the strand.
                    self._begin_parkable_fetch(conn, request, blobs)
                else:
                    self._enqueue_task(
                        conn, partial(self._handle_request, conn, request, blobs)
                    )
        except ConnectionError:
            self._close_conn(conn)

    # -- outbound -----------------------------------------------------------

    def _queue_output(self, conn: _Conn, buffers) -> None:
        """Hand encoded buffers to the loop (called from workers)."""
        with conn.lock:
            if conn.closed:
                return
            conn.outbox.extend(buffers)
        with self._wake_lock:
            self._dirty.add(conn)
        self._wake()

    def _flush_dirty(self) -> None:
        with self._wake_lock:
            dirty, self._dirty = self._dirty, set()
        for conn in dirty:
            if not conn.closed:
                self._pump_out(conn)

    def _pump_out(self, conn: _Conn) -> None:
        outbuf = conn.outbuf
        with conn.lock:
            while conn.outbox:
                outbuf += conn.outbox.popleft()
        while outbuf:
            try:
                sent = conn.sock.send(outbuf)
            except BlockingIOError:
                break
            except OSError:
                self._close_conn(conn)
                return
            if sent == 0:
                break
            del outbuf[:sent]
        # Backpressure with hysteresis: a slow reader stops being read
        # once its outbound buffer passes the cap, resumes below half.
        if conn.read_paused:
            if len(outbuf) < self.max_buffered_bytes // 2:
                conn.read_paused = False
        elif len(outbuf) > self.max_buffered_bytes:
            conn.read_paused = True
        self._update_mask(conn)

    def _update_mask(self, conn: _Conn) -> None:
        mask = 0
        if not conn.read_paused:
            mask |= _READ
        if conn.outbuf or conn.outbox:
            mask |= _WRITE
        if mask == 0:
            mask = _WRITE  # paused reader with a drained buffer: next
            # pump resumes reads; keep the registration valid meanwhile.
        if mask != conn.mask:
            try:
                self._selector.modify(conn.sock, mask, conn)
                conn.mask = mask
            except (KeyError, ValueError, OSError):
                pass

    # -- strand scheduling --------------------------------------------------

    def _enqueue_task(self, conn: _Conn, thunk) -> None:
        """Queue *thunk* on the connection's strand (FIFO per conn)."""
        with conn.lock:
            if conn.closed:
                return
            conn.pending.append(thunk)
            if conn.scheduled:
                return
            conn.scheduled = True
        self._tasks.put(conn)

    def _worker_loop(self) -> None:
        while True:
            conn = self._tasks.get()
            if conn is None:
                return
            with conn.lock:
                thunk = conn.pending.popleft() if conn.pending else None
            if thunk is not None:
                try:
                    thunk()
                except Exception:  # noqa: BLE001 — a worker must survive
                    pass
            requeue = False
            with conn.lock:
                if conn.pending:
                    requeue = True
                else:
                    conn.scheduled = False
            if requeue:
                self._tasks.put(conn)

    # -- request handling (workers) -----------------------------------------

    def _count_op(self, op) -> None:
        with self._counts_lock:
            self.op_counts[op] = self.op_counts.get(op, 0) + 1

    def _handle_request(self, conn: _Conn, request: dict, blobs) -> None:
        cid = request.pop("cid", None)
        trace_ctx = request.pop("trace", None)
        op = request.get("op")
        self._count_op(op)
        span = None
        if self._tracer is not None and trace_ctx is not None:
            span = self._tracer.start_span(
                f"server.{op}", parent=trace_ctx, site=self.broker.name
            )
        out_blobs: list = []
        try:
            result, out_blobs = execute_op(self.broker, request, blobs)
            response = {"ok": True, "result": result}
        except Exception as exc:  # noqa: BLE001 — all errors go to the client
            out_blobs = []
            if span is not None:
                span.set_attr("error", type(exc).__name__)
            response = {"ok": False, "error": type(exc).__name__, "message": str(exc)}
        if span is not None:
            span.finish()
        self._respond(conn, cid, response, out_blobs)

    def _respond(self, conn: _Conn, cid, response: dict, out_blobs) -> None:
        if cid is not None:
            response["cid"] = cid
        with self._counts_lock:
            self.requests_served += 1
        try:
            buffers = encode_frame(response, out_blobs)
        except Exception:  # noqa: BLE001 — unencodable response: drop it
            return
        self._queue_output(conn, buffers)

    # -- long-poll parking (reactor thread) ---------------------------------

    def _begin_parkable_fetch(self, conn: _Conn, request: dict, blobs) -> None:
        cid = request.pop("cid", None)
        trace_ctx = request.pop("trace", None)
        op = request.get("op")
        self._count_op(op)
        span = None
        if self._tracer is not None and trace_ctx is not None:
            # The span covers the full park, like the old side thread did.
            span = self._tracer.start_span(
                f"server.{op}", parent=trace_ctx, site=self.broker.name
            )
        entry = _ParkedFetch(conn, op, cid, span, request)
        try:
            entry.log = self.broker.partition_log(entry.topic, entry.partition)
            records, satisfied = entry.log.poll_fetch(
                entry.offset, entry.max_records, entry.min_bytes
            )
        except Exception as exc:  # noqa: BLE001
            self._finish_parked(entry, error=exc)
            return
        if satisfied:
            self._finish_parked(entry, records=records)
            return
        # Park: waiter first, then re-probe, so an append racing the park
        # can never be missed (it either lands before the probe or sets
        # the waker after registration).
        entry.deadline = time.monotonic() + float(request.get("timeout"))
        key = (entry.topic, entry.partition)
        bucket = self._parked.setdefault(key, [])
        bucket.append(entry)
        if key not in self._wakers:
            waker = _PartitionWaker(self, key)
            self._wakers[key] = waker
            entry.log.register_waiter(waker)
        heapq.heappush(self._deadlines, (entry.deadline, next(self._park_seq), entry))
        try:
            records, satisfied = entry.log.poll_fetch(
                entry.offset, entry.max_records, entry.min_bytes
            )
        except Exception as exc:  # noqa: BLE001
            self._unpark(entry)
            self._finish_parked(entry, error=exc)
            return
        if satisfied:
            self._unpark(entry)
            self._finish_parked(entry, records=records)
            return
        entry.log.note_long_poll_parked()

    def _unpark(self, entry: _ParkedFetch) -> None:
        entry.done = True
        key = (entry.topic, entry.partition)
        bucket = self._parked.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(entry)
        except ValueError:
            pass
        if not bucket:
            del self._parked[key]
            waker = self._wakers.pop(key, None)
            if waker is not None and entry.log is not None:
                entry.log.unregister_waiter(waker)

    def _finish_parked(self, entry: _ParkedFetch, records=None, error=None) -> None:
        """Complete a (possibly never-parked) long-poll via the strand."""
        self._enqueue_task(
            entry.conn, partial(self._complete_fetch, entry, records, error)
        )

    def _complete_fetch(self, entry: _ParkedFetch, records, error) -> None:
        out_blobs: list = []
        if error is None:
            try:
                result, out_blobs = format_fetch(entry.op, records or [])
                response = {"ok": True, "result": result}
            except Exception as exc:  # noqa: BLE001
                error = exc
        if error is not None:
            out_blobs = []
            if entry.span is not None:
                entry.span.set_attr("error", type(error).__name__)
            response = {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }
        if entry.span is not None:
            entry.span.finish()
        self._respond(entry.conn, entry.cid, response, out_blobs)

    def _process_wakes(self) -> None:
        with self._wake_lock:
            if not self._pending_wakes:
                return
            keys, self._pending_wakes = self._pending_wakes, set()
        for key in keys:
            bucket = self._parked.get(key)
            if not bucket:
                continue
            for entry in list(bucket):
                try:
                    records, satisfied = entry.log.poll_fetch(
                        entry.offset, entry.max_records, entry.min_bytes
                    )
                except Exception as exc:  # noqa: BLE001
                    self._unpark(entry)
                    self._finish_parked(entry, error=exc)
                    continue
                if satisfied:
                    self._unpark(entry)
                    self._finish_parked(entry, records=records)

    def _process_deadlines(self) -> None:
        heap = self._deadlines
        now = time.monotonic()
        while heap and heap[0][0] <= now:
            _, _, entry = heapq.heappop(heap)
            if entry.done:
                continue
            self._unpark(entry)
            try:
                # Deadline contract: return whatever is available, even
                # if the min_bytes threshold never filled (possibly []).
                records, _ = entry.log.poll_fetch(
                    entry.offset, entry.max_records, entry.min_bytes
                )
            except Exception as exc:  # noqa: BLE001
                self._finish_parked(entry, error=exc)
                continue
            self._finish_parked(entry, records=records)
