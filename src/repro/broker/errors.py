"""Broker error hierarchy."""

from __future__ import annotations


class BrokerError(Exception):
    """Base class for all brokering errors."""


class UnknownTopicError(BrokerError):
    """The referenced topic does not exist."""

    def __init__(self, topic: str) -> None:
        super().__init__(f"unknown topic {topic!r}")
        self.topic = topic


class UnknownPartitionError(BrokerError):
    """The referenced partition does not exist within its topic."""

    def __init__(self, topic: str, partition: int) -> None:
        super().__init__(f"topic {topic!r} has no partition {partition}")
        self.topic = topic
        self.partition = partition


class OffsetOutOfRangeError(BrokerError):
    """A fetch requested an offset outside the retained log range."""

    def __init__(self, topic: str, partition: int, offset: int, lo: int, hi: int) -> None:
        super().__init__(
            f"offset {offset} out of range [{lo}, {hi}) for {topic}/{partition}"
        )
        self.topic = topic
        self.partition = partition
        self.offset = offset
        self.lo = lo
        self.hi = hi


class RebalanceInProgressError(BrokerError):
    """Raised when a consumer operation races a group rebalance."""


class TopicExistsError(BrokerError):
    """Topic creation collided with an existing topic."""

    def __init__(self, topic: str) -> None:
        super().__init__(f"topic {topic!r} already exists")
        self.topic = topic
