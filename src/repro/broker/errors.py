"""Broker error hierarchy.

Two orthogonal axes matter to clients:

- what went wrong (the concrete subclass), and
- whether retrying can help. :class:`RetriableError` marks transient
  conditions (timeouts, dropped connections, in-flight rebalances) a
  client may safely retry after a backoff; :class:`FatalError` marks
  conditions where retrying the same request can never succeed (a fenced
  producer epoch, a sequence-number gap). :func:`is_retriable` folds
  built-in transient exceptions (``ConnectionError``, ``TimeoutError``,
  ``socket.timeout``) into the same test, since the transport surfaces
  those directly.
"""

from __future__ import annotations


class BrokerError(Exception):
    """Base class for all brokering errors."""


class RetriableError(BrokerError):
    """A transient failure; the same request may succeed after a backoff."""


class FatalError(BrokerError):
    """A permanent failure; retrying the same request cannot succeed."""


class BrokerTimeoutError(RetriableError):
    """An operation exceeded its deadline (server slow, link stalled)."""


class DisconnectedError(RetriableError):
    """The transport to the broker was lost mid-operation."""


class ProducerFencedError(FatalError):
    """A newer instance of this producer registered (higher epoch)."""

    def __init__(self, producer_id: int, epoch: int, current_epoch: int) -> None:
        super().__init__(
            f"producer {producer_id} epoch {epoch} fenced by epoch {current_epoch}"
        )
        self.producer_id = producer_id
        self.epoch = epoch
        self.current_epoch = current_epoch


class OutOfOrderSequenceError(FatalError):
    """An idempotent append skipped sequence numbers (lost batch)."""

    def __init__(self, producer_id: int, expected: int, got: int) -> None:
        super().__init__(
            f"producer {producer_id}: expected sequence {expected}, got {got}"
        )
        self.producer_id = producer_id
        self.expected = expected
        self.got = got


class UnknownMemberError(RetriableError):
    """A heartbeat/commit referenced a member the group evicted.

    Retriable in the Kafka sense: the consumer re-joins the group and
    carries on with a fresh assignment.
    """

    def __init__(self, group_id: str, member_id: str) -> None:
        super().__init__(f"member {member_id!r} is not in group {group_id!r}")
        self.group_id = group_id
        self.member_id = member_id


class NotOwnerError(RetriableError):
    """The addressed shard does not own the partition (or group).

    Raised before the operation touches any state, so a retry against
    the true owner is always safe. Clients should refresh cluster
    metadata (``describe_cluster``) and re-route; the carried ``epoch``
    lets them discard responses from maps older than what they hold.
    """

    def __init__(self, resource: str, owner_shard: int, shard: int, epoch: int) -> None:
        super().__init__(
            f"{resource} is owned by shard {owner_shard}, not shard {shard} "
            f"(cluster epoch {epoch})"
        )
        self.resource = resource
        self.owner_shard = owner_shard
        self.shard = shard
        self.epoch = epoch


class NotEnoughReplicasError(RetriableError):
    """An ``acks=all`` append timed out waiting for the high-watermark.

    The record *is* in the leader's log; what failed is the durability
    guarantee — not enough in-sync replicas acknowledged it in time.
    Retriable: the idempotent-producer dedup window absorbs the replay,
    so a retry either finds the batch already replicated (and acks with
    the original offsets) or re-waits for the ISR to catch up.
    """

    def __init__(self, topic: str, partition: int, offset: int, timeout: float) -> None:
        super().__init__(
            f"{topic}/{partition}: high-watermark did not reach {offset} "
            f"within {timeout:.1f}s (not enough in-sync replicas)"
        )
        self.topic = topic
        self.partition = partition
        self.offset = offset
        self.timeout = timeout


class StaleLeaderEpochError(FatalError):
    """A replication request carried a leader epoch older than the
    follower's. The sender was deposed by an election; retrying with the
    same epoch can never succeed — it must refresh cluster metadata and
    stand down (zombie-leader fencing, the cluster-level analogue of
    :class:`ProducerFencedError`)."""

    def __init__(self, resource: str, epoch: int, current_epoch: int) -> None:
        super().__init__(
            f"{resource}: leader epoch {epoch} fenced by epoch {current_epoch}"
        )
        self.resource = resource
        self.epoch = epoch
        self.current_epoch = current_epoch


def is_retriable(exc: BaseException) -> bool:
    """True when *exc* marks a transient condition worth retrying."""
    if isinstance(exc, RetriableError):
        return True
    if isinstance(exc, BrokerError):
        # Everything else in the hierarchy (unknown topic, fenced
        # producer, validation-shaped errors) cannot be fixed by retrying.
        return False
    return isinstance(exc, (ConnectionError, TimeoutError, OSError))


class UnknownTopicError(BrokerError):
    """The referenced topic does not exist."""

    def __init__(self, topic: str) -> None:
        super().__init__(f"unknown topic {topic!r}")
        self.topic = topic


class UnknownPartitionError(BrokerError):
    """The referenced partition does not exist within its topic."""

    def __init__(self, topic: str, partition: int) -> None:
        super().__init__(f"topic {topic!r} has no partition {partition}")
        self.topic = topic
        self.partition = partition


class OffsetOutOfRangeError(BrokerError):
    """A fetch requested an offset outside the retained log range."""

    def __init__(self, topic: str, partition: int, offset: int, lo: int, hi: int) -> None:
        super().__init__(
            f"offset {offset} out of range [{lo}, {hi}) for {topic}/{partition}"
        )
        self.topic = topic
        self.partition = partition
        self.offset = offset
        self.lo = lo
        self.hi = hi


class RebalanceInProgressError(RetriableError):
    """Raised when a consumer operation races a group rebalance.

    Retriable: once the rebalance settles and the consumer re-fetches
    its assignment, the operation can be reissued."""


class TopicExistsError(BrokerError):
    """Topic creation collided with an existing topic."""

    def __init__(self, topic: str) -> None:
        super().__init__(f"topic {topic!r} already exists")
        self.topic = topic
