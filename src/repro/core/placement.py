"""Task-placement policies.

Pilot-Edge "automatically handles task placements, i.e., the binding of a
task to a pilot" (step 2.1, Fig. 1), honouring application preferences.
The deployment patterns the paper evaluates map onto three static
policies — cloud-centric (the evaluation's primary pattern), edge-centric
and hybrid — plus a cost-model policy that picks the placement minimising
estimated per-message makespan from the topology's link costs and
measured compute costs. The cost policy implements the paper's
discussion of when "an edge or hybrid deployment would be an option"
(e.g. adding a compression step before an intercontinental transfer).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.netem.topology import ContinuumTopology
from repro.util.validation import ValidationError, check_non_negative


@dataclass(frozen=True)
class PlacementDecision:
    """Which tier runs the (heavy) processing stage, and why."""

    processing_tier: str        # "edge" | "cloud"
    edge_preprocess: bool       # run process_edge before the transfer?
    estimated_cost_s: float = 0.0
    rationale: str = ""


class PlacementPolicy(abc.ABC):
    """Strategy interface for stage placement."""

    name = "base"
    #: Whether the policy needs a message-size estimate. When True, the
    #: pipeline probes the producer once before starting (the probe uses
    #: device id "device-probe", so device-keyed producers are
    #: undisturbed; stateful producers see one extra call).
    requires_probe = False

    @abc.abstractmethod
    def decide(
        self,
        message_bytes: int,
        edge_site: str,
        cloud_site: str,
        topology: ContinuumTopology | None = None,
        edge_compute_s: float = 0.0,
        cloud_compute_s: float = 0.0,
        compression_ratio: float = 1.0,
    ) -> PlacementDecision:
        """Choose a placement for the processing stage.

        ``edge_compute_s``/``cloud_compute_s`` are per-message compute
        estimates on each tier; ``compression_ratio`` is output/input size
        of the edge pre-processing function (1.0 = no reduction).
        """


class CloudCentricPlacement(PlacementPolicy):
    """Raw data to the cloud; all processing there (paper's Fig. 3 mode)."""

    name = "cloud-centric"

    def decide(self, message_bytes, edge_site, cloud_site, topology=None,
               edge_compute_s=0.0, cloud_compute_s=0.0, compression_ratio=1.0):
        return PlacementDecision(
            processing_tier="cloud",
            edge_preprocess=False,
            rationale="static cloud-centric pattern",
        )


class EdgeCentricPlacement(PlacementPolicy):
    """Everything at the edge; only results leave the device."""

    name = "edge-centric"

    def decide(self, message_bytes, edge_site, cloud_site, topology=None,
               edge_compute_s=0.0, cloud_compute_s=0.0, compression_ratio=1.0):
        return PlacementDecision(
            processing_tier="edge",
            edge_preprocess=True,
            rationale="static edge-centric pattern",
        )


class HybridPlacement(PlacementPolicy):
    """Pre-process (e.g. compress) at the edge, heavy processing in the
    cloud — the deployment the paper recommends for transatlantic runs."""

    name = "hybrid"

    def decide(self, message_bytes, edge_site, cloud_site, topology=None,
               edge_compute_s=0.0, cloud_compute_s=0.0, compression_ratio=1.0):
        return PlacementDecision(
            processing_tier="cloud",
            edge_preprocess=True,
            rationale="static hybrid pattern (edge pre-processing enabled)",
        )


class CostBasedPlacement(PlacementPolicy):
    """Minimise estimated per-message makespan.

    Candidate placements:

    1. cloud-centric: ``transfer(raw) + cloud_compute``
    2. hybrid: ``edge_preprocess + transfer(raw * ratio) + cloud_compute``
    3. edge-centric: ``edge_compute`` (results assumed negligible in size)

    Compute estimates come from calibration (see
    :mod:`repro.sim.costmodel`); transfer estimates from the topology.
    """

    name = "cost-based"
    requires_probe = True

    def __init__(self, edge_preprocess_s: float = 0.0) -> None:
        check_non_negative("edge_preprocess_s", edge_preprocess_s)
        #: Per-message cost of the edge pre-processing function.
        self.edge_preprocess_s = float(edge_preprocess_s)

    def decide(self, message_bytes, edge_site, cloud_site, topology=None,
               edge_compute_s=0.0, cloud_compute_s=0.0, compression_ratio=1.0):
        if topology is None:
            raise ValidationError("CostBasedPlacement requires a topology")
        transfer_raw = topology.transfer_time_estimate(edge_site, cloud_site, message_bytes)
        transfer_small = topology.transfer_time_estimate(
            edge_site, cloud_site, int(message_bytes * compression_ratio)
        )
        candidates = {
            ("cloud", False): transfer_raw + cloud_compute_s,
            ("cloud", True): self.edge_preprocess_s + transfer_small + cloud_compute_s,
            ("edge", True): edge_compute_s,
        }
        (tier, preprocess), cost = min(candidates.items(), key=lambda kv: kv[1])
        pretty = {
            ("cloud", False): "cloud-centric",
            ("cloud", True): "hybrid",
            ("edge", True): "edge-centric",
        }[(tier, preprocess)]
        return PlacementDecision(
            processing_tier=tier,
            edge_preprocess=preprocess,
            estimated_cost_s=cost,
            rationale=(
                f"{pretty} wins: "
                + ", ".join(
                    f"{pretty_k}={v*1e3:.1f}ms"
                    for pretty_k, v in [
                        ("cloud-centric", candidates[("cloud", False)]),
                        ("hybrid", candidates[("cloud", True)]),
                        ("edge-centric", candidates[("edge", True)]),
                    ]
                )
            ),
        )
