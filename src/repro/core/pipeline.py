"""The EdgeToCloudPipeline: Pilot-Edge's execution engine.

Wires the application's FaaS functions across the acquired pilots
(paper Listing 2 / Fig. 1 step 2):

1. A topic with one partition per edge device is created on the
   pilot-managed broker.
2. One long-running *producer task* per device is placed on the edge
   pilot's compute cluster. It repeatedly calls ``produce_edge``,
   optionally applies ``process_edge`` (hybrid/edge placements), frames
   the block in the wire format and publishes it to the device's
   partition — paying the edge→broker link cost when a topology is
   configured.
3. *Consumer tasks* (one per partition by default) are placed on the
   processing pilot's cluster. Each joins the run's consumer group,
   polls its partitions, pays the broker→processing link cost, decodes
   and runs ``process_cloud`` — whose reference can be swapped at
   runtime (:meth:`replace_cloud_function`), the paper's low/high
   fidelity model exchange.
4. Every message is stamped at produce / broker_in / consume /
   process_start / process_end, linked by a run-scoped message id, so
   the result's report can attribute the bottleneck.

The pipeline is synchronous from the caller's perspective: ``run()``
blocks until every expected message is processed (or the deadline
passes) and returns a :class:`PipelineResult`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.broker.broker import Broker
from repro.broker.consumer import Consumer
from repro.broker.errors import RebalanceInProgressError
from repro.broker.producer import Producer
from repro.compute.task import ResourceSpec, Task
from repro.core.config import PipelineConfig
from repro.core.context import FunctionContext
from repro.core.events import (
    FUNCTION_REPLACED,
    SCALED,
    EventBus,
)
from repro.core.placement import CloudCentricPlacement, PlacementDecision, PlacementPolicy
from repro.data.serde import decode_block, decode_block_many, encode_block
from repro.monitoring.collector import MetricsCollector
from repro.monitoring.report import ThroughputReport, analyze_bottleneck
from repro.netem.link import Link
from repro.params.client import ParameterClient
from repro.params.server import ParameterServer
from repro.pilot.compute import PilotCompute
from repro.pilot.states import PilotState
from repro.util.ids import new_run_id
from repro.util.ringbuffer import RingBuffer
from repro.util.validation import ValidationError, check_positive


class _AtomicCounter:
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, n: int = 1) -> int:
        with self._lock:
            self._value += n
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


@dataclass
class PipelineResult:
    """Everything a run produced."""

    run_id: str
    completed: bool
    report: ThroughputReport
    bottleneck: dict
    results: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    broker_stats: dict = field(default_factory=dict)
    placement: PlacementDecision | None = None

    @property
    def throughput_mb_s(self) -> float:
        return self.report.throughput_mb_s

    @property
    def latency_mean_s(self) -> float:
        return self.report.latency_mean_s


class EdgeToCloudPipeline:
    """Deploys an edge-to-cloud application across pilots (Listing 2)."""

    def __init__(
        self,
        pilot_edge: PilotCompute,
        pilot_cloud_processing: PilotCompute,
        produce_function_handler: Callable,
        process_cloud_function_handler: Callable,
        pilot_cloud_broker: PilotCompute | None = None,
        process_edge_function_handler: Callable | None = None,
        function_context: dict | None = None,
        config: PipelineConfig | None = None,
        topology=None,
        parameter_server: ParameterServer | None = None,
        placement: PlacementPolicy | None = None,
        event_bus: EventBus | None = None,
        run_id: str | None = None,
        broker: Broker | None = None,
        registry=None,
        tracer=None,
        sampler=None,
    ) -> None:
        for name, pilot in (("pilot_edge", pilot_edge), ("pilot_cloud_processing", pilot_cloud_processing)):
            if not isinstance(pilot, PilotCompute):
                raise ValidationError(f"{name} must be a PilotCompute, got {type(pilot).__name__}")
        if not callable(produce_function_handler):
            raise ValidationError("produce_function_handler must be callable")
        if not callable(process_cloud_function_handler):
            raise ValidationError("process_cloud_function_handler must be callable")

        self.pilot_edge = pilot_edge
        self.pilot_cloud_processing = pilot_cloud_processing
        self.pilot_cloud_broker = pilot_cloud_broker or pilot_cloud_processing
        self.config = config or PipelineConfig()
        self.topology = topology
        self.run_id = run_id or new_run_id()
        self.events = event_bus or EventBus()
        self.placement_policy = placement or CloudCentricPlacement()

        self._produce_fn = produce_function_handler
        self._edge_fn = process_edge_function_handler
        self._cloud_fn = process_cloud_function_handler
        self._fn_lock = threading.Lock()

        self._param_server = parameter_server or ParameterServer(name=f"{self.run_id}-params")
        # Telemetry is opt-in: with all three left as None the data path
        # runs exactly as before (no per-message tracing hooks, no typed
        # instruments, no background sampling).
        self._registry = registry
        self._tracer = tracer
        self._sampler = sampler
        self._owns_sampler = False
        # The broker may be injected (e.g. a pilot-managed broker from
        # repro.pilot.frameworks.ManagedBroker); otherwise the pipeline
        # manages a private one — durable (segment-backed, with crash
        # recovery) when the config names a log_dir.
        self._owns_broker = broker is None
        if broker is not None:
            self._broker = broker
        else:
            cfg = self.config
            storage = None
            if cfg.log_dir is not None:
                from repro.broker.storage import StorageConfig

                storage = StorageConfig(
                    segment_bytes=cfg.log_segment_bytes,
                    flush_ms=cfg.log_flush_ms,
                    fsync_acks=cfg.log_fsync_acks,
                )
            self._broker = Broker(
                name=f"{self.run_id}-broker",
                tracer=tracer,
                log_dir=cfg.log_dir,
                storage=storage,
            )
        self._collector = MetricsCollector(self.run_id, registry=registry)
        self._results = RingBuffer(self.config.keep_results)
        self._errors: list[str] = []
        self._errors_lock = threading.Lock()

        self._user_context = dict(function_context or {})
        # Distinct message ids processed: consumer-group rebalances give
        # at-least-once delivery, so completion must count unique ids,
        # not deliveries.
        self._processed_ids: set = set()
        self._processed_lock = threading.Lock()
        # Producers park here under backpressure; consumers signal it
        # from _count_processed* as messages drain.
        self._backpressure = threading.Condition()
        self._produced = _AtomicCounter()
        self._done = threading.Event()
        self._abort = threading.Event()
        self._started = False
        self._consumer_stops: list[threading.Event] = []
        self._extra_consumer_futures: list = []
        self._decision: PlacementDecision | None = None

    # -- public accessors -----------------------------------------------------

    @property
    def broker(self) -> Broker:
        return self._broker

    @property
    def parameter_server(self) -> ParameterServer:
        return self._param_server

    @property
    def collector(self) -> MetricsCollector:
        return self._collector

    @property
    def registry(self):
        return self._registry

    @property
    def tracer(self):
        return self._tracer

    @property
    def sampler(self):
        return self._sampler

    @property
    def processed_count(self) -> int:
        with self._processed_lock:
            return len(self._processed_ids)

    def _count_processed(self, message_id: str) -> bool:
        """Record a distinct processed message; True if it was new."""
        return self._count_processed_many((message_id,))[0]

    def _count_processed_many(self, message_ids) -> list[bool]:
        """Record a batch of processed messages under one lock acquisition.

        Returns, per id, whether it was new (first delivery). Signals any
        backpressured producers after the lock is released — the notify
        must not nest inside ``_processed_lock`` because waiting producers
        read ``processed_count`` (which takes that lock) while holding the
        backpressure condition.
        """
        flags = []
        with self._processed_lock:
            for message_id in message_ids:
                if message_id in self._processed_ids:
                    flags.append(False)
                else:
                    self._processed_ids.add(message_id)
                    flags.append(True)
            if len(self._processed_ids) >= self._expected_messages():
                self._done.set()
        # Always notify: besides backpressured producers, outside callers
        # (RunningPipeline.wait_for_processed) wait on this condition for
        # progress.
        if any(flags):
            with self._backpressure:
                self._backpressure.notify_all()
        return flags

    @property
    def produced_count(self) -> int:
        return self._produced.value

    # -- runtime reconfiguration -------------------------------------------------

    def replace_cloud_function(self, fn: Callable) -> None:
        """Swap the processing function at runtime (no new pilot needed)."""
        if not callable(fn):
            raise ValidationError("replacement function must be callable")
        with self._fn_lock:
            old = self._cloud_fn
            self._cloud_fn = fn
        self.events.publish(
            FUNCTION_REPLACED,
            stage="cloud",
            old=getattr(old, "__name__", "?"),
            new=getattr(fn, "__name__", "?"),
        )

    def replace_edge_function(self, fn: Callable | None) -> None:
        """Swap (or remove) the edge pre-processing function at runtime."""
        with self._fn_lock:
            old = self._edge_fn
            self._edge_fn = fn
        self.events.publish(
            FUNCTION_REPLACED,
            stage="edge",
            old=getattr(old, "__name__", None),
            new=getattr(fn, "__name__", None),
        )

    def _current_cloud_fn(self) -> Callable:
        with self._fn_lock:
            return self._cloud_fn

    def _current_edge_fn(self) -> Callable | None:
        with self._fn_lock:
            return self._edge_fn

    def scale_consumers(self, additional: int) -> None:
        """Add consumer tasks at runtime (responds to load peaks)."""
        check_positive("additional", additional)
        if not self._started:
            raise ValidationError("scale_consumers() requires a running pipeline")
        cluster = self._processing_cluster()
        start = len(self._consumer_stops)
        for i in range(int(additional)):
            consumer = self._make_consumer()
            stop = threading.Event()
            self._consumer_stops.append(stop)
            future = cluster.scheduler.submit(
                Task(
                    fn=self._consumer_loop,
                    args=(consumer, start + i, stop),
                    resources=ResourceSpec(cores=1, memory_gb=1),
                    run_id=self.run_id,
                )
            )
            self._extra_consumer_futures.append(future)
        self.events.publish(SCALED, component="consumers", added=int(additional))

    # -- wiring helpers --------------------------------------------------------------

    def _require_running(self, pilot: PilotCompute, role: str) -> None:
        if pilot.state is not PilotState.RUNNING:
            raise ValidationError(
                f"{role} pilot {pilot.pilot_id} is {pilot.state.value}; "
                "wait for RUNNING before starting the pipeline"
            )

    def _link(self, a_site: str, b_site: str) -> Link | None:
        if self.topology is None or a_site == b_site:
            return None
        return self.topology.link(a_site, b_site)

    def _processing_cluster(self):
        # Consumers always run on the processing pilot. In edge-centric
        # placement the heavy function executes inline on the device
        # (inside the producer task) and the consumers are mere sinks —
        # running them on the edge would steal the devices' single cores.
        return self.pilot_cloud_processing.cluster

    def _base_context(self, site: str, link: Link | None = None) -> FunctionContext:
        params = ParameterClient(self._param_server, link=link, namespace=self.run_id)
        return FunctionContext.build(
            run_id=self.run_id,
            user_context=self._user_context,
            params=params,
            topology=self.topology,
            site=site,
        )

    def _record_error(self, where: str, exc: BaseException) -> None:
        with self._errors_lock:
            self._errors.append(f"{where}: {exc!r}")
        self.events.publish("pipeline.error", where=where, error=repr(exc))

    def _make_consumer(self) -> Consumer:
        cfg = self.config
        consumer = Consumer(
            self._broker,
            group_id=f"{self.run_id}-processors",
            session_timeout_ms=(
                cfg.session_timeout_ms if cfg.session_timeout_ms > 0 else None
            ),
            fetch_prefetch_batches=cfg.fetch_prefetch_batches,
            fetch_max_buffer_bytes=cfg.fetch_max_buffer_bytes,
            fetch_min_bytes=cfg.fetch_min_bytes,
            fetch_max_wait_ms=cfg.fetch_max_wait_ms,
            tracer=self._tracer,
            trace_site=self.pilot_cloud_processing.site,
        )
        consumer.subscribe(cfg.topic)
        return consumer

    # -- the two task bodies -------------------------------------------------------

    def _producer_loop(self, device_index: int) -> int:
        """Body of one edge producer task; returns messages produced."""
        cfg = self.config
        edge_site = self.pilot_edge.site
        broker_site = self.pilot_cloud_broker.site
        uplink = self._link(edge_site, broker_site)
        device_id = f"device-{device_index}"
        context = self._base_context(edge_site).for_device(
            device_id, device_index, edge_site
        )
        producer = Producer(
            self._broker,
            client_id=f"{self.run_id}-{device_id}",
            retries=cfg.producer_retries,
            retry_backoff_ms=cfg.retry_backoff_ms,
            tracer=self._tracer,
            trace_site=edge_site,
        )
        edge_processing = (
            self._decision is not None and self._decision.processing_tier == "edge"
        )
        sent = 0
        #: (message_id, payload, headers) awaiting one batched publish.
        pending: list[tuple] = []

        def flush() -> None:
            """Publish the accumulated batch in one broker append."""
            nonlocal sent
            if not pending:
                return
            count = len(pending)
            mids = [mid for mid, _, _ in pending]
            self._collector.stamp_many(
                mids, "uplink_start", time.monotonic(), site=edge_site
            )
            payload_bytes = sum(len(p) for _, p, _ in pending)
            for attempt in range(cfg.producer_retries + 1):
                try:
                    if uplink is not None:
                        uplink.transfer(payload_bytes)
                    producer.send_many(
                        cfg.topic,
                        [p for _, p, _ in pending],
                        partition=device_index,
                        headers=[h for _, _, h in pending],
                    )
                    break
                except ConnectionError:
                    if attempt < cfg.producer_retries:
                        # At-least-once mode: the uplink dropped the
                        # batch (or the broker flapped) — resend it. The
                        # producer's idempotent sequence makes a resend of
                        # an already-landed batch a broker-side no-op.
                        self._collector.incr("produce_retries")
                        continue
                    # Lossy-link drop: account for the batch (QoS-0
                    # semantics) so the run can still complete.
                    self._collector.incr("messages_dropped", count)
                    self._count_processed_many(mids)
                    self._produced.increment(count)
                    pending.clear()
                    return
            self._collector.stamp_many(
                mids, "broker_in", time.monotonic(), site=broker_site
            )
            sent += count
            self._produced.increment(count)
            pending.clear()

        for seq in range(cfg.messages_per_device):
            if self._abort.is_set():
                break
            if cfg.max_inflight > 0:
                # Backpressure: park until the processing tier drains.
                # The condition is signaled from _count_processed_many;
                # the short wait timeout only covers abort/deadline, not
                # the drain signal. One stall = one counted wait, however
                # long the stall lasts.
                stalled = False
                with self._backpressure:
                    while (
                        self._produced.value - self.processed_count >= cfg.max_inflight
                        and not self._abort.is_set()
                        and not self._done.is_set()
                    ):
                        if not stalled:
                            stalled = True
                            self._collector.incr("backpressure_waits")
                        self._backpressure.wait(0.05)
            block = self._produce_fn(context)
            if block is None:
                break
            message_id = f"{self.run_id}/d{device_index}/m{seq}"
            produce_ts = time.monotonic()
            headers = {"message_id": message_id, "device": device_id}

            edge_fn = self._current_edge_fn()
            if edge_fn is not None and (
                self._decision is None or self._decision.edge_preprocess
            ):
                block = edge_fn(context, block)
                if block is None:
                    # Windowing/filtering edge functions absorb messages
                    # (nothing to forward yet). Account the message so
                    # the run's completion target is still reachable.
                    self._collector.incr("messages_absorbed_at_edge")
                    self._count_processed(message_id)
                    self._produced.increment()
                    continue
            if edge_processing:
                # Edge-centric placement: the heavy function runs on the
                # device; only its (small) result block crosses the link.
                self._collector.stamp(
                    message_id, "process_start", time.monotonic(), site=edge_site
                )
                result = self._current_cloud_fn()(context, block)
                self._collector.stamp(
                    message_id, "process_end", time.monotonic(), site=edge_site
                )
                self._results.append(result)
                block = _result_block(result)
                headers["processed"] = True

            payload = encode_block(block, compress=cfg.compress_wire)
            self._collector.stamp(
                message_id,
                "produce",
                produce_ts,
                nbytes=len(payload),
                site=edge_site,
                partition=device_index,
            )
            pending.append((message_id, payload, headers))
            if len(pending) >= cfg.produce_batch or cfg.produce_interval > 0:
                # Paced producers deliver per message (batching would
                # add linger latency that pacing exists to avoid).
                flush()
            if cfg.produce_interval > 0:
                time.sleep(cfg.produce_interval)
        flush()
        producer.close()
        if producer.produce_retries:
            self._collector.incr("produce_retries", producer.produce_retries)
        return sent

    def _consumer_loop(self, consumer: Consumer, index: int, stop: threading.Event) -> int:
        """Body of one processing consumer task; returns records handled."""
        cfg = self.config
        broker_site = self.pilot_cloud_broker.site
        proc_site = self.pilot_cloud_processing.site
        downlink = self._link(broker_site, proc_site)
        context = self._base_context(proc_site).for_device(
            f"consumer-{index}", -1, proc_site
        )
        handled = 0
        since_commit = 0
        try:
            while not (self._done.is_set() or self._abort.is_set() or stop.is_set()):
                records = consumer.poll(
                    max_records=cfg.poll_batch, timeout=cfg.poll_timeout
                )
                if not records:
                    continue
                handled += self._handle_records(
                    records, context, downlink, broker_site, proc_site
                )
                since_commit += len(records)
                if since_commit >= cfg.commit_interval:
                    try:
                        consumer.commit()
                    except RebalanceInProgressError:
                        # Evicted mid-batch: positions are stale, the next
                        # poll re-fetches the post-rebalance assignment.
                        # At-least-once delivery + the pipeline's dedup
                        # absorb the redelivered records.
                        self._collector.incr("commits_refused")
                    since_commit = 0
        finally:
            try:
                consumer.commit()
            except Exception:
                pass
            if consumer.evictions:
                # Each eviction is a missed session deadline observed by
                # this consumer when its next heartbeat bounced.
                self._collector.incr("heartbeats_missed", consumer.evictions)
            consumer.close()
            stats = consumer.stats()
            if "prefetch_hits" in stats:
                # close() already evicted any undelivered buffered
                # records, so these totals are final.
                if stats["prefetch_hits"]:
                    self._collector.incr("prefetch_hits", stats["prefetch_hits"])
                if stats["prefetch_evictions"]:
                    self._collector.incr(
                        "prefetch_evictions", stats["prefetch_evictions"]
                    )
                self._collector.record_max(
                    "fetches_in_flight", stats["max_fetches_in_flight"]
                )
        return handled

    @staticmethod
    def _resolve_batch_fn(fn: Callable) -> Callable | None:
        """The batch FaaS contract: how a function opts into batching.

        A processing function takes the batched fast path when it either
        carries a callable ``process_cloud_batch(context, blocks)``
        attribute or declares ``supports_batch = True`` (meaning the
        function itself accepts a list of blocks). Plain per-message
        functions return None here and keep the per-message path.
        """
        batch = getattr(fn, "process_cloud_batch", None)
        if callable(batch):
            return batch
        if getattr(fn, "supports_batch", False):
            return fn
        return None

    def _handle_records(
        self, records, context, downlink, broker_site: str, proc_site: str
    ) -> int:
        """Consume one polled record batch: stamp, dedupe, decode, score.

        Every per-record stamp loop runs through ``stamp_many`` (one
        collector lock acquisition per batch per stage), and fresh
        records reach the user function as ONE ``process_cloud_batch``
        call when the function is batch-capable and ``consume_batch`` > 1.
        """
        cfg = self.config
        # Normalize the message id to str ONCE: the record.offset
        # fallback is an int, and int-keyed stamps would file the same
        # message under two keys (trace vs processed-set).
        ids = [str(r.headers.get("message_id", r.offset)) for r in records]
        # Queue exit: the records left the broker; downlink transfers
        # happen next.
        self._collector.stamp_many(ids, "dequeue", time.monotonic(), site=broker_site)
        if downlink is not None:
            alive = []
            dropped = []
            for message_id, record in zip(ids, records):
                try:
                    downlink.transfer(record.size)
                except ConnectionError:
                    dropped.append(message_id)
                else:
                    alive.append((message_id, record))
            if dropped:
                self._collector.incr("messages_dropped", len(dropped))
                self._count_processed_many(dropped)
            if not alive:
                return len(records)
        else:
            alive = list(zip(ids, records))
        now = time.monotonic()
        self._collector.stamp_many(
            [m for m, _ in alive],
            "consume",
            now,
            nbytes=[r.size for _, r in alive],
            site=proc_site,
            partition=[r.partition for _, r in alive],
        )
        new_flags = self._count_processed_many([m for m, _ in alive])
        fresh = []
        sink = []
        duplicates = 0
        for (message_id, record), is_new in zip(alive, new_flags):
            if record.headers.get("processed"):
                # Edge-centric mode: already processed on-device.
                sink.append(message_id)
            elif is_new:
                fresh.append((message_id, record))
            else:
                duplicates += 1
        if sink:
            self._collector.stamp_many(sink, "consume_sink", now)
        if duplicates:
            self._collector.incr("duplicate_deliveries", duplicates)
        if fresh:
            fn = self._current_cloud_fn()
            batch_fn = self._resolve_batch_fn(fn) if cfg.consume_batch > 1 else None
            if batch_fn is None:
                for message_id, record in fresh:
                    self._process_record(message_id, record, fn, context, proc_site)
            else:
                for start in range(0, len(fresh), cfg.consume_batch):
                    self._process_chunk(
                        fresh[start : start + cfg.consume_batch],
                        fn,
                        batch_fn,
                        context,
                        proc_site,
                    )
        return len(records)

    def _process_record(
        self, message_id: str, record, fn: Callable, context, proc_site: str, block=None
    ) -> None:
        """Per-message processing: decode, score, stamp — one user call."""
        if block is None:
            block = decode_block(record.value, verify=self.config.check_crcs)
        self._collector.stamp(
            message_id, "process_start", time.monotonic(), site=proc_site
        )
        try:
            result = fn(context, block)
        except Exception as exc:
            # A failing user function poisons one message,
            # not the consumer: record and keep consuming.
            self._collector.incr("processing_errors")
            self._record_error(f"process[{message_id}]", exc)
        else:
            self._collector.stamp(
                message_id,
                "process_end",
                time.monotonic(),
                nbytes=record.size,
                site=proc_site,
            )
            self._results.append(result)

    def _process_chunk(
        self, chunk, fn: Callable, batch_fn: Callable, context, proc_site: str
    ) -> None:
        """Batched processing: ONE user-function call for the whole chunk."""
        mids = [message_id for message_id, _ in chunk]
        blocks = decode_block_many(
            [record.value for _, record in chunk], verify=self.config.check_crcs
        )
        self._collector.stamp_many(
            mids, "process_start", time.monotonic(), site=proc_site
        )
        try:
            results = batch_fn(context, blocks)
            if results is None or len(results) != len(chunk):
                raise ValidationError(
                    f"process_cloud_batch returned "
                    f"{0 if results is None else len(results)} results "
                    f"for {len(chunk)} blocks"
                )
        except Exception:
            # A poisoned message must cost one message, not the chunk:
            # re-run per message so failure isolation (and the recorded
            # errors) match the per-message path exactly. A function that
            # only exists in batch form (``supports_batch``) is re-run on
            # singleton lists, unwrapping the one result.
            self._collector.incr("batch_fallbacks")
            if fn is batch_fn:
                single_fn = lambda ctx, blk: batch_fn(ctx, [blk])[0]  # noqa: E731
            else:
                single_fn = fn
            for (message_id, record), block in zip(chunk, blocks):
                self._process_record(
                    message_id, record, single_fn, context, proc_site, block=block
                )
            return
        self._collector.stamp_many(
            mids,
            "process_end",
            time.monotonic(),
            nbytes=[record.size for _, record in chunk],
            site=proc_site,
        )
        for result in results:
            self._results.append(result)

    def _expected_messages(self) -> int:
        return self.config.total_messages

    # -- the run -----------------------------------------------------------------------

    def run(self, wait: bool = True) -> PipelineResult | "RunningPipeline":
        """Execute the pipeline; blocks until completion unless ``wait=False``.

        With ``wait=False`` a :class:`RunningPipeline` handle is returned
        so the caller can reconfigure the pipeline mid-flight (function
        replacement, consumer scaling) and then ``join()``.
        """
        if self._started:
            raise ValidationError("pipeline already started")
        self._started = True
        cfg = self.config

        self._require_running(self.pilot_edge, "edge")
        self._require_running(self.pilot_cloud_processing, "processing")
        self._require_running(self.pilot_cloud_broker, "broker")

        # Placement decision (step 2.1): which tier processes, and
        # whether the edge pre-processing stage is active. Only
        # cost-driven policies need the message-size probe.
        sample_bytes = (
            self._estimate_message_bytes()
            if getattr(self.placement_policy, "requires_probe", False)
            else 0
        )
        self._decision = self.placement_policy.decide(
            message_bytes=sample_bytes,
            edge_site=self.pilot_edge.site,
            cloud_site=self.pilot_cloud_processing.site,
            topology=self.topology,
            compression_ratio=getattr(self._edge_fn, "compression_ratio", 1.0),
        )

        # Remote/cluster broker proxies don't all accept retention_bytes;
        # only thread it through when the config actually sets a cap.
        topic_kwargs = {"exist_ok": True}
        if cfg.log_retention_bytes:
            topic_kwargs["retention_bytes"] = cfg.log_retention_bytes
        self._broker.create_topic(
            cfg.topic, num_partitions=cfg.num_devices, **topic_kwargs
        )

        if self._sampler is not None:
            # Watch the run's broker (log depth, end offsets, group size,
            # consumer lag). A sampler the caller already started keeps
            # its cadence; otherwise the pipeline owns its lifecycle and
            # stops it (with a final sample) at the end of the run.
            self._sampler.watch_broker(self._broker)
            if not self._sampler.running:
                self._sampler.start()
                self._owns_sampler = True

        # Consumers join the group before producers start so the initial
        # partition assignment is stable for the whole run.
        consumers = [self._make_consumer() for _ in range(cfg.effective_consumers)]
        processing_cluster = self._processing_cluster()
        consumer_futures = []
        for i, consumer in enumerate(consumers):
            stop = threading.Event()
            self._consumer_stops.append(stop)
            consumer_futures.append(
                processing_cluster.scheduler.submit(
                    Task(
                        fn=self._consumer_loop,
                        args=(consumer, i, stop),
                        resources=ResourceSpec(cores=1, memory_gb=1),
                        run_id=self.run_id,
                    )
                )
            )

        producer_futures = [
            self.pilot_edge.cluster.scheduler.submit(
                Task(
                    fn=self._producer_loop,
                    args=(device,),
                    resources=ResourceSpec(cores=1, memory_gb=1),
                    run_id=self.run_id,
                )
            )
            for device in range(cfg.num_devices)
        ]

        handle = RunningPipeline(self, producer_futures, consumer_futures)
        if wait:
            return handle.join()
        return handle

    def _estimate_message_bytes(self) -> int:
        """Probe one block from the producer to size placement estimates."""
        probe_ctx = self._base_context(self.pilot_edge.site).for_device(
            "device-probe", -1, self.pilot_edge.site
        )
        try:
            block = self._produce_fn(probe_ctx)
            if block is None:
                return 0
            return len(encode_block(block))
        except Exception:
            return 0

    def _finalize(self, producer_futures, consumer_futures) -> PipelineResult:
        cfg = self.config
        deadline = time.monotonic() + cfg.max_duration
        completed = self._done.wait(timeout=cfg.max_duration)
        if not completed:
            self._abort.set()
        self._done.set()  # release consumer loops

        for future in producer_futures:
            try:
                future.result(timeout=max(1.0, deadline - time.monotonic()))
            except Exception as exc:
                self._record_error("producer", exc)
        for future in consumer_futures + self._extra_consumer_futures:
            try:
                future.result(timeout=max(1.0, deadline - time.monotonic()))
            except Exception as exc:
                self._record_error("consumer", exc)

        broker_stats = self._broker.stats()
        # Fold broker/transport robustness counters into the run's
        # collector so reports see one consistent namespace.
        for counter in ("duplicates_dropped", "members_evicted", "long_polls_parked"):
            value = broker_stats.get(counter, 0)
            if value:
                self._collector.incr(counter, value)
        reconnects = getattr(self._broker, "reconnects", 0)
        if reconnects:
            self._collector.incr("reconnects", reconnects)

        if self._sampler is not None and self._owns_sampler:
            # Consumers have committed and left by now, so the final
            # sample records the drained state: lag back to 0.
            self._sampler.stop(final_sample=True)

        if self._owns_broker:
            # Flush durable logs and write final producer snapshots; a
            # no-op for in-memory brokers.
            self._broker.close()

        report = ThroughputReport.from_collector(
            self._collector, sampler=self._sampler, tracer=self._tracer
        )
        return PipelineResult(
            run_id=self.run_id,
            completed=completed and not self._errors,
            report=report,
            bottleneck=analyze_bottleneck(self._collector),
            results=self._results.to_list(),
            errors=list(self._errors),
            broker_stats=broker_stats,
            placement=self._decision,
        )


def _result_block(result: Any):
    """Encode a processing result as a tiny 1-row block for transport."""
    import numpy as np

    if isinstance(result, np.ndarray) and result.ndim == 2:
        return result
    if isinstance(result, dict):
        numeric = [float(v) for v in result.values() if isinstance(v, (int, float))]
        if numeric:
            return np.asarray([numeric], dtype=np.float64)
    return np.zeros((1, 1), dtype=np.float64)


class RunningPipeline:
    """Handle to an in-flight pipeline run (``run(wait=False)``)."""

    def __init__(self, pipeline: EdgeToCloudPipeline, producer_futures, consumer_futures) -> None:
        self.pipeline = pipeline
        self._producer_futures = producer_futures
        self._consumer_futures = consumer_futures

    @property
    def done(self) -> bool:
        return self.pipeline._done.is_set()

    def wait_for_processed(self, count: int, timeout: float = 30.0) -> bool:
        """Block until at least *count* messages have been processed.

        Waits on the pipeline's progress condition (consumers notify it
        as messages drain) instead of sleep-polling; the wait is capped
        so done/abort transitions — which can fire without a final
        progress notification — are still observed promptly.
        """
        pipeline = self.pipeline
        deadline = time.monotonic() + timeout
        while True:
            if pipeline.processed_count >= count:
                return True
            if self.done:
                return pipeline.processed_count >= count
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            with pipeline._backpressure:
                # Re-check under the lock so a notify racing the checks
                # above is not lost.
                if pipeline.processed_count >= count or self.done:
                    continue
                pipeline._backpressure.wait(min(remaining, 0.25))

    def abort(self) -> None:
        self.pipeline._abort.set()
        self.pipeline._done.set()
        with self.pipeline._backpressure:
            self.pipeline._backpressure.notify_all()

    def join(self) -> PipelineResult:
        return self.pipeline._finalize(self._producer_futures, self._consumer_futures)
