"""Event-driven task execution (Pilot-Streaming heritage).

"Pilot-Streaming also allows the event-driven execution of tasks
on-demand, e.g., responding to data arrival events." A
:class:`DataTrigger` subscribes to a broker topic and submits one task to
a compute cluster per arriving record batch — FaaS semantics where the
*data*, not a driver loop, causes execution.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.broker.broker import Broker
from repro.broker.consumer import Consumer
from repro.compute.cluster import ComputeCluster
from repro.compute.task import ResourceSpec, Task
from repro.util.ids import new_id
from repro.util.validation import ValidationError, check_positive


class DataTrigger:
    """Fires a task on the cluster for every arriving record batch.

    Parameters
    ----------
    broker, topic:
        Where to listen. The trigger joins its own consumer group so
        several triggers can observe the same topic independently.
    cluster:
        Where the handler tasks run.
    handler:
        ``handler(records) -> Any``; invoked inside a cluster task.
    batch_size, poll_timeout:
        Batching knobs: fire with up to *batch_size* records, polling in
        *poll_timeout*-second waits.
    resources:
        Per-invocation resource request.
    """

    def __init__(
        self,
        broker: Broker,
        topic: str,
        cluster: ComputeCluster,
        handler: Callable,
        batch_size: int = 8,
        poll_timeout: float = 0.1,
        resources: ResourceSpec | None = None,
    ) -> None:
        if not callable(handler):
            raise ValidationError("handler must be callable")
        check_positive("batch_size", batch_size)
        check_positive("poll_timeout", poll_timeout)
        self.trigger_id = new_id("trigger")
        self._broker = broker
        self._topic = topic
        self._cluster = cluster
        self._handler = handler
        self._batch_size = int(batch_size)
        self._poll_timeout = float(poll_timeout)
        self._resources = resources or ResourceSpec()
        self._consumer: Consumer | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._futures: list = []
        self._futures_lock = threading.Lock()
        self.invocations = 0
        self.records_dispatched = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "DataTrigger":
        if self._thread is not None:
            raise RuntimeError("trigger already started")
        self._broker.topic(self._topic)  # validate the topic exists
        self._consumer = Consumer(self._broker, group_id=f"{self.trigger_id}-group")
        self._consumer.subscribe(self._topic)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._listen, name=self.trigger_id, daemon=True
        )
        self._thread.start()
        return self

    def _listen(self) -> None:
        while not self._stop.is_set():
            records = self._consumer.poll(
                max_records=self._batch_size, timeout=self._poll_timeout
            )
            if not records:
                continue
            future = self._cluster.submit_task(
                Task(
                    fn=self._handler,
                    args=(records,),
                    resources=self._resources,
                )
            )
            with self._futures_lock:
                self._futures.append(future)
            self.invocations += 1
            self.records_dispatched += len(records)

    def stop(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop listening; optionally wait for in-flight handler tasks."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        if self._consumer is not None:
            self._consumer.close()
            self._consumer = None
        if wait:
            for future in self.pending_futures():
                try:
                    future.result(timeout=timeout)
                except Exception:
                    pass  # handler errors are observable via the futures

    def __enter__(self) -> "DataTrigger":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- observation -----------------------------------------------------------

    def pending_futures(self) -> list:
        with self._futures_lock:
            return list(self._futures)

    def wait_for_invocations(self, count: int, timeout: float = 10.0) -> bool:
        """Block until at least *count* handler tasks were dispatched."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.invocations >= count:
                return True
            time.sleep(0.005)
        return self.invocations >= count

    def stats(self) -> dict:
        return {
            "trigger": self.trigger_id,
            "topic": self._topic,
            "invocations": self.invocations,
            "records_dispatched": self.records_dispatched,
        }
