"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import (
    ValidationError,
    check_non_negative,
    check_positive,
)


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable knobs of an edge-to-cloud pipeline run.

    Defaults mirror the paper's baseline experiment: one partition per
    edge device, 512 messages per run, consumers matched 1:1 with
    partitions ("we keep the ratio of partitions constant between Kafka
    and Dask").
    """

    #: Number of simulated edge devices; each gets a dedicated partition.
    num_devices: int = 1
    #: Messages each device produces in one run (paper: 512 per run total
    #: for single-device runs).
    messages_per_device: int = 512
    #: Consumer tasks on the processing tier; defaults to one per
    #: partition when 0.
    num_consumers: int = 0
    #: Broker topic name.
    topic: str = "pilot-edge-data"
    #: Max records per consumer poll.
    poll_batch: int = 8
    #: Producer-side batching: each device accumulates this many encoded
    #: messages and publishes them through one batched broker append
    #: (one lock round-trip in-process, one socket round-trip remotely).
    #: 1 = send every message individually (the paper's per-message shape).
    produce_batch: int = 1
    #: Consumer-side batching: up to this many freshly polled records are
    #: decoded together and handed to the application in ONE
    #: ``process_cloud_batch(context, blocks)`` call (or one call of a
    #: ``supports_batch`` function), with results split back out per
    #: message. 1 = the per-message path; >1 only takes effect when the
    #: processing function is batch-capable — plain ``process_cloud``
    #: functions keep the per-message path regardless.
    consume_batch: int = 1
    #: Verify each frame's payload CRC32 when decoding on the consumer
    #: (Kafka's ``check.crcs``). The CRC scan dominates decode cost for
    #: large raw frames; disable it when the transport is trusted (the
    #: in-process broker never corrupts payloads) and throughput matters
    #: more than end-to-end integrity checking.
    check_crcs: bool = True
    #: Blocking-poll timeout per consumer iteration (seconds).
    poll_timeout: float = 0.2
    #: Hard cap on run duration (seconds); the run fails if exceeded.
    max_duration: float = 600.0
    #: Keep the last N processing results for inspection.
    keep_results: int = 1024
    #: Seconds between produced messages per device (0 = as fast as possible).
    produce_interval: float = 0.0
    #: Commit consumer offsets every N processed records.
    commit_interval: int = 32
    #: Backpressure: producers pause while more than this many messages
    #: are in flight (produced but not yet processed). 0 = unbounded —
    #: the paper's configuration, where the broker absorbs the backlog.
    max_inflight: int = 0
    #: Lossless wire compression (zlib) of blocks before the uplink —
    #: the "data compression step before the data transfer" the paper
    #: recommends for bandwidth-bound geographic deployments.
    compress_wire: bool = False
    #: Producer delivery retries. 0 (default) keeps QoS-0 semantics:
    #: lossy-link drops are counted in ``messages_dropped`` and the run
    #: proceeds. >0 turns on at-least-once publishing: a lost uplink
    #: transfer or transient broker failure is retried (with broker-side
    #: idempotent dedup, so retries never duplicate log offsets).
    producer_retries: int = 0
    #: Initial backoff (ms) between producer delivery retries; grows
    #: exponentially with jitter, capped at 2 s.
    retry_backoff_ms: float = 100.0
    #: Consumer-group failure-detection window (ms): consumers that stop
    #: polling for longer are evicted and their partitions rebalanced to
    #: the survivors. 0 (default) disables eviction.
    session_timeout_ms: float = 0.0
    #: Pipelined wire protocol: requests in flight per remote-broker
    #: connection before callers queue for a slot. Non-idempotent ops
    #: always cap at 1 regardless (Kafka's max.in.flight rule). Only
    #: meaningful for remote brokers; the in-process path has no wire.
    max_in_flight_requests: int = 5
    #: Long-poll fetch: the broker holds a fetch until this many payload
    #: bytes are available (or the wait expires) instead of returning
    #: empty for the consumer to re-poll across the WAN.
    fetch_min_bytes: int = 1
    #: Upper bound (ms) on how long the broker parks a long-poll fetch.
    fetch_max_wait_ms: float = 500.0
    #: Consumer prefetch depth, in batches of ``poll_batch`` records per
    #: assigned partition. 0 (default) disables the background fetcher
    #: and polls synchronously.
    fetch_prefetch_batches: int = 0
    #: Byte budget shared by all of one consumer's prefetch buffers;
    #: fetchers park (backpressure) when it is reached.
    fetch_max_buffer_bytes: int = 64 * 1024 * 1024
    #: Durable partition logs: when set, the pipeline's broker persists
    #: every partition as segment files under this directory and
    #: recovers them on restart. None (default) keeps the in-memory
    #: deque logs — the paper's configuration.
    log_dir: str | None = None
    #: Group-commit window (ms) for the durable log's shared flusher:
    #: all appends arriving within it are retired by one write+fsync.
    log_flush_ms: float = 50.0
    #: Make appends block until their batch is fsynced (single-node
    #: durability before the ack). Off by default: the ack is in-memory
    #: and the flush timer bounds the loss window, which `acks="all"`
    #: replication covers.
    log_fsync_acks: bool = False
    #: Roll segment files at this size; also bounds recovery cost (boot
    #: scans only the active segment).
    log_segment_bytes: int = 32 * 1024 * 1024
    #: On-disk retention cap per partition (0 = unbounded). Whole sealed
    #: segments are dropped oldest-first — the edge-tier half of the
    #: tiered-storage story (pair with a PilotDataOffloader for the
    #: cloud half).
    log_retention_bytes: int = 0

    def __post_init__(self) -> None:
        check_positive("num_devices", self.num_devices)
        check_positive("messages_per_device", self.messages_per_device)
        check_non_negative("num_consumers", self.num_consumers)
        check_positive("poll_batch", self.poll_batch)
        check_positive("produce_batch", self.produce_batch)
        check_positive("consume_batch", self.consume_batch)
        check_positive("poll_timeout", self.poll_timeout)
        check_positive("max_duration", self.max_duration)
        check_positive("keep_results", self.keep_results)
        check_non_negative("produce_interval", self.produce_interval)
        check_positive("commit_interval", self.commit_interval)
        check_non_negative("max_inflight", self.max_inflight)
        check_non_negative("producer_retries", self.producer_retries)
        check_non_negative("retry_backoff_ms", self.retry_backoff_ms)
        check_non_negative("session_timeout_ms", self.session_timeout_ms)
        check_positive("max_in_flight_requests", self.max_in_flight_requests)
        check_positive("fetch_min_bytes", self.fetch_min_bytes)
        check_non_negative("fetch_max_wait_ms", self.fetch_max_wait_ms)
        check_non_negative("fetch_prefetch_batches", self.fetch_prefetch_batches)
        check_positive("fetch_max_buffer_bytes", self.fetch_max_buffer_bytes)
        check_positive("log_flush_ms", self.log_flush_ms)
        check_positive("log_segment_bytes", self.log_segment_bytes)
        check_non_negative("log_retention_bytes", self.log_retention_bytes)
        if self.log_fsync_acks and not self.log_dir:
            raise ValidationError("log_fsync_acks requires log_dir")
        if not self.topic:
            raise ValidationError("topic must be non-empty")

    @property
    def total_messages(self) -> int:
        return self.num_devices * self.messages_per_device

    @property
    def effective_consumers(self) -> int:
        return self.num_consumers if self.num_consumers > 0 else self.num_devices
