"""Ready-made FaaS functions for the paper's workloads.

These factories build the ``produce_edge`` / ``process_edge`` /
``process_cloud`` functions used throughout the evaluation: the Mini-App
block producer, the streaming-outlier-detection processors for each model
(k-means / isolation forest / auto-encoder), a pass-through processor for
the baseline runs, and the compression edge processor discussed for
hybrid transatlantic deployments.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.context import FunctionContext
from repro.data.generator import DataBlockGenerator, GeneratorConfig
from repro.ml.base import BaseOutlierDetector
from repro.util.validation import ValidationError, check_positive


def make_block_producer(
    points: int = 1000,
    features: int = 32,
    clusters: int = 25,
    outlier_fraction: float = 0.01,
    seed: int = 42,
) -> Callable:
    """Producer factory: each call to the returned function emits a block.

    The generator is created lazily *per device* (keyed by the context's
    device id) with a device-derived seed, so every simulated edge device
    produces an independent, reproducible stream.
    """
    check_positive("points", points)
    check_positive("features", features)
    generators: dict[str, DataBlockGenerator] = {}

    def produce_edge(context: dict):
        device = FunctionContext.DEVICE_ID
        device_id = context.get(device, "device-0") if context else "device-0"
        gen = generators.get(device_id)
        if gen is None:
            device_seed = seed + (hash(device_id) % 10_000)
            gen = DataBlockGenerator(
                GeneratorConfig(
                    points=points,
                    features=features,
                    clusters=clusters,
                    outlier_fraction=outlier_fraction,
                    seed=device_seed,
                )
            )
            generators[device_id] = gen
        return gen.next_block()

    produce_edge.__name__ = f"produce_blocks_{points}x{features}"
    return produce_edge


def passthrough_processor(context: dict = None, data=None):
    """Baseline processing: validate and summarise, no model.

    Reproduces the paper's "baseline performance" runs, where throughput
    is bounded by data movement rather than computation.
    """
    block = np.asarray(data)
    return {
        "points": int(block.shape[0]),
        "features": int(block.shape[1]) if block.ndim > 1 else 1,
        "mean_norm": float(np.linalg.norm(block.mean(axis=0))),
    }


def _passthrough_batch(context: dict = None, blocks=None):
    """Batched counterpart of :func:`passthrough_processor`.

    One call per poll batch: the per-block means remain one (memory-bound)
    reduction each, but the norms and the Python-level call overhead are
    paid once for the whole batch.
    """
    arrs = [np.asarray(b) for b in blocks]
    means = np.asarray([a.mean(axis=0) if a.ndim > 1 else a.mean() for a in arrs])
    norms = np.linalg.norm(np.atleast_2d(means), axis=1)
    return [
        {
            "points": int(a.shape[0]),
            "features": int(a.shape[1]) if a.ndim > 1 else 1,
            "mean_norm": float(norm),
        }
        for a, norm in zip(arrs, norms)
    ]


#: Batch FaaS contract: the pipeline finds this attribute and makes one
#: call per polled record batch instead of one per message.
passthrough_processor.process_cloud_batch = _passthrough_batch


def make_model_processor(model_factory: Callable, share_key: str | None = None) -> Callable:
    """Processor factory for streaming outlier detection.

    The returned ``process_cloud(context, data)`` scores each incoming
    block with the model, then updates the model on it — the paper's "the
    model is updated based on the incoming data" pattern. With
    ``share_key`` set, updated weights are published to the parameter
    service after every block ("model updates are managed via the
    parameter service").

    The model instance is *per consumer task*: the pipeline deploys one
    long-running consumer per partition (each on its own worker thread),
    and every deployed task trains its own replica — matching how state
    captured in a Dask task closure is replicated per task. Thread-local
    storage implements that here, and also makes the processor safe when
    several consumers share one Python process. Cross-replica weight
    sharing goes through the parameter service (``share_key``).
    """
    import threading

    state = threading.local()

    def process_cloud(context: dict = None, data=None):
        model: BaseOutlierDetector | None = getattr(state, "model", None)
        if model is None:
            model = model_factory()
            state.model = model
        block = np.asarray(data)
        if model.fitted:
            scores = model.decision_function(block)
            n_outliers = int((scores > model.threshold).sum()) if model.threshold else 0
        else:
            scores = None
            n_outliers = 0
        model.partial_fit(block)
        if share_key is not None and context is not None:
            params = FunctionContext(context).params if isinstance(context, dict) else None
            if params is not None and hasattr(model, "get_weights"):
                params.set(share_key, model.get_weights())
        return {
            "model": type(model).__name__,
            "points": int(block.shape[0]),
            "outliers": n_outliers,
            "max_score": float(scores.max()) if scores is not None else 0.0,
        }

    def process_cloud_batch(context: dict = None, blocks=None):
        """Batched variant: score the whole poll batch in one model call.

        The blocks are stacked into a single matrix and scored/fitted
        once — the stacked-ensemble fast path the models were built for
        (per-point scoring cost collapses when given 1000s of points at
        once). Model updates consequently land at batch rather than
        per-message granularity, which matches the paper's streaming
        pattern: the model is updated on the data that has arrived.
        """
        from repro.data.serde import split_rows, stack_blocks

        model: BaseOutlierDetector | None = getattr(state, "model", None)
        if model is None:
            model = model_factory()
            state.model = model
        stacked, offsets = stack_blocks([np.asarray(b) for b in blocks])
        if model.fitted:
            scores = model.decision_function(stacked)
            threshold = model.threshold
            per_block = split_rows(scores, offsets)
        else:
            per_block = [None] * len(blocks)
            threshold = None
        model.partial_fit(stacked)
        if share_key is not None and context is not None:
            params = FunctionContext(context).params if isinstance(context, dict) else None
            if params is not None and hasattr(model, "get_weights"):
                params.set(share_key, model.get_weights())
        return [
            {
                "model": type(model).__name__,
                "points": int(offsets[i + 1] - offsets[i]),
                "outliers": int((s > threshold).sum()) if s is not None and threshold else 0,
                "max_score": float(s.max()) if s is not None else 0.0,
            }
            for i, s in enumerate(per_block)
        ]

    process_cloud.__name__ = f"process_{model_factory.__name__}"
    process_cloud.process_cloud_batch = process_cloud_batch
    return process_cloud


def make_compression_edge_processor(factor: int = 4) -> Callable:
    """Edge pre-processing: block-mean pooling as lossy compression.

    Reduces a block to ``points // factor`` rows by averaging groups of
    *factor* consecutive rows — the "data compression step before the data
    transfer" the paper suggests for bandwidth-bound geographic runs.
    """
    check_positive("factor", factor)
    if int(factor) < 1:
        raise ValidationError("factor must be >= 1")

    def process_edge(context: dict = None, data=None):
        block = np.asarray(data, dtype=np.float64)
        n = (block.shape[0] // factor) * factor
        if n == 0:
            return block
        trimmed = block[:n]
        return trimmed.reshape(n // factor, factor, block.shape[1]).mean(axis=1)

    process_edge.__name__ = f"compress_mean_pool_{factor}x"
    process_edge.compression_ratio = 1.0 / factor
    return process_edge
