"""Windowed stream operators for edge pre-processing.

Section II-D: "the edge function frequently serves for data
pre-aggregation, outlier detection, and data compression". These
operators build such edge functions compositionally:

- :class:`TumblingWindow` — collects *n* blocks, emits one aggregate,
- :func:`make_aggregating_edge_processor` — block-level statistics
  (mean / min / max / std per feature) replacing raw rows,
- :func:`make_threshold_filter` — emit only rows whose feature exceeds a
  threshold (event-triggered transmission),
- :func:`compose_edge_processors` — chain several edge functions.

All returned functions follow the ``process_edge(context, data)``
signature and may return ``None`` (meaning: nothing to forward yet),
which the pipeline's producer loop treats as "skip this message".
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.util.validation import ValidationError, check_positive


class TumblingWindow:
    """Fixed-count tumbling window over incoming blocks.

    Feed blocks with :meth:`add`; every *size*-th block completes a
    window and returns the stacked contents, otherwise ``None``.
    """

    def __init__(self, size: int) -> None:
        check_positive("size", size)
        self.size = int(size)
        self._buffer: list = []
        self.windows_emitted = 0

    def add(self, block: np.ndarray):
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2:
            raise ValidationError(f"blocks must be 2-D, got shape {block.shape}")
        self._buffer.append(block)
        if len(self._buffer) >= self.size:
            out = np.vstack(self._buffer)
            self._buffer = []
            self.windows_emitted += 1
            return out
        return None

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def flush(self):
        """Emit whatever is buffered (end-of-stream handling)."""
        if not self._buffer:
            return None
        out = np.vstack(self._buffer)
        self._buffer = []
        self.windows_emitted += 1
        return out


#: Statistic name -> row-reducing function over a block.
_STATS: dict = {
    "mean": lambda b: b.mean(axis=0),
    "min": lambda b: b.min(axis=0),
    "max": lambda b: b.max(axis=0),
    "std": lambda b: b.std(axis=0),
    "median": lambda b: np.median(b, axis=0),
}


def make_aggregating_edge_processor(stats: Sequence[str] = ("mean", "min", "max")) -> Callable:
    """Edge function reducing each block to per-feature statistics.

    The output block has one row per requested statistic — a massive
    data reduction (e.g. 10,000 rows -> 3) for workloads where the cloud
    only needs summaries.
    """
    stats = tuple(stats)
    if not stats:
        raise ValidationError("at least one statistic is required")
    for s in stats:
        if s not in _STATS:
            raise ValidationError(f"unknown statistic {s!r}; available: {sorted(_STATS)}")

    def process_edge(context: dict = None, data=None):
        block = np.asarray(data, dtype=np.float64)
        return np.vstack([_STATS[s](block) for s in stats])

    process_edge.__name__ = f"aggregate_{'_'.join(stats)}"
    process_edge.compression_ratio = 0.0  # effectively constant-size output
    return process_edge


def make_threshold_filter(feature: int, threshold: float, keep_above: bool = True) -> Callable:
    """Edge function forwarding only rows beyond a threshold.

    Models event-triggered transmission: quiet periods send (almost)
    nothing. Returns ``None`` when no row qualifies.
    """
    if feature < 0:
        raise ValidationError("feature index must be non-negative")

    def process_edge(context: dict = None, data=None):
        block = np.asarray(data, dtype=np.float64)
        if feature >= block.shape[1]:
            raise ValidationError(
                f"feature {feature} out of range for {block.shape[1]}-feature block"
            )
        mask = block[:, feature] > threshold if keep_above else block[:, feature] < threshold
        if not mask.any():
            return None
        return block[mask]

    process_edge.__name__ = f"filter_f{feature}_{'gt' if keep_above else 'lt'}_{threshold}"
    return process_edge


def make_windowed_edge_processor(window_size: int, inner: Callable | None = None) -> Callable:
    """Wrap an edge function with a tumbling window.

    Blocks accumulate until the window fills; then ``inner`` (default:
    identity) runs once on the stacked window. Between window boundaries
    the processor returns ``None``.
    """
    window = TumblingWindow(window_size)

    def process_edge(context: dict = None, data=None):
        filled = window.add(data)
        if filled is None:
            return None
        return inner(context, filled) if inner is not None else filled

    process_edge.__name__ = f"window_{window_size}"
    process_edge.window = window
    return process_edge


def compose_edge_processors(*processors: Callable) -> Callable:
    """Chain edge functions left-to-right; ``None`` short-circuits."""
    if not processors:
        raise ValidationError("at least one processor is required")
    for p in processors:
        if not callable(p):
            raise ValidationError("processors must be callable")

    def process_edge(context: dict = None, data=None):
        out = data
        for p in processors:
            out = p(context, out)
            if out is None:
                return None
        return out

    process_edge.__name__ = "composed_" + "__".join(
        getattr(p, "__name__", "fn") for p in processors
    )
    return process_edge
