"""The context object handed to every FaaS function.

Per the paper (section II-B): "Further information on the resource
topology and shared state are via a context object." The context behaves
like a dict (the paper's functions declare ``context: dict``) while also
exposing typed accessors for the framework services.
"""

from __future__ import annotations

from typing import Any

from repro.params.client import ParameterClient


class FunctionContext(dict):
    """Dict-compatible context with framework service accessors.

    Framework-reserved keys are namespaced under ``pilot_edge.*`` so user
    entries never collide with them.
    """

    RUN_ID = "pilot_edge.run_id"
    DEVICE_ID = "pilot_edge.device_id"
    PARTITION = "pilot_edge.partition"
    SITE = "pilot_edge.site"
    PARAMS = "pilot_edge.params"
    TOPOLOGY = "pilot_edge.topology"

    @classmethod
    def build(
        cls,
        run_id: str,
        user_context: dict | None = None,
        params: ParameterClient | None = None,
        topology=None,
        site: str = "",
        device_id: str = "",
        partition: int = -1,
    ) -> "FunctionContext":
        ctx = cls(user_context or {})
        ctx[cls.RUN_ID] = run_id
        ctx[cls.SITE] = site
        ctx[cls.DEVICE_ID] = device_id
        ctx[cls.PARTITION] = partition
        if params is not None:
            ctx[cls.PARAMS] = params
        if topology is not None:
            ctx[cls.TOPOLOGY] = topology
        return ctx

    # -- typed accessors ----------------------------------------------------

    @property
    def run_id(self) -> str:
        return self.get(self.RUN_ID, "")

    @property
    def device_id(self) -> str:
        return self.get(self.DEVICE_ID, "")

    @property
    def partition(self) -> int:
        return self.get(self.PARTITION, -1)

    @property
    def site(self) -> str:
        return self.get(self.SITE, "")

    @property
    def params(self) -> ParameterClient | None:
        """The parameter-service client (model sharing)."""
        return self.get(self.PARAMS)

    @property
    def topology(self):
        """The resource topology, when network emulation is configured."""
        return self.get(self.TOPOLOGY)

    def for_device(self, device_id: str, partition: int, site: str) -> "FunctionContext":
        """Per-device copy handed to one producer instance."""
        ctx = FunctionContext(self)
        ctx[self.DEVICE_ID] = device_id
        ctx[self.PARTITION] = partition
        ctx[self.SITE] = site
        return ctx

    def user_items(self) -> dict:
        """Only the application's own entries."""
        return {k: v for k, v in self.items() if not str(k).startswith("pilot_edge.")}
