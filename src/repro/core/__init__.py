"""Pilot-Edge core: the FaaS abstraction and edge-to-cloud pipeline.

This is the paper's primary contribution. Applications implement up to
three plain Python functions (Listing 1 of the paper)::

    def produce_edge(context)                 # sensing / data generation
    def process_edge(context, data)           # edge-side processing
    def process_cloud(context, data)          # cloud-side processing

and hand them — together with the pilots acquired through
:mod:`repro.pilot` — to :class:`EdgeToCloudPipeline` (Listing 2). The
framework packages the functions into tasks, places them on the pilots'
compute clusters, wires the dataflow through the pilot-managed broker,
shares model state via the parameter service, and links metrics across
every component.

Supporting pieces:

- :class:`FunctionContext` — the context object passed to every function
  (resource topology, parameter client, per-device identity),
- placement policies (:mod:`repro.core.placement`) — cloud-centric,
  edge-centric, hybrid, and a cost-model-driven policy,
- :class:`EventBus` + :class:`AutoScaler` — runtime dynamism: load
  peaks, failures, function replacement, resource scaling.
"""

from repro.core.context import FunctionContext
from repro.core.config import PipelineConfig
from repro.core.pipeline import EdgeToCloudPipeline, PipelineResult
from repro.core.placement import (
    PlacementPolicy,
    CloudCentricPlacement,
    EdgeCentricPlacement,
    HybridPlacement,
    CostBasedPlacement,
    PlacementDecision,
)
from repro.core.events import EventBus, Event
from repro.core.scaling import AutoScaler, ScalingPolicy
from repro.core.workloads import (
    make_block_producer,
    make_model_processor,
    passthrough_processor,
    make_compression_edge_processor,
)
from repro.core.triggers import DataTrigger
from repro.core.windows import (
    TumblingWindow,
    make_aggregating_edge_processor,
    make_threshold_filter,
    make_windowed_edge_processor,
    compose_edge_processors,
)

__all__ = [
    "FunctionContext",
    "PipelineConfig",
    "EdgeToCloudPipeline",
    "PipelineResult",
    "PlacementPolicy",
    "CloudCentricPlacement",
    "EdgeCentricPlacement",
    "HybridPlacement",
    "CostBasedPlacement",
    "PlacementDecision",
    "EventBus",
    "Event",
    "AutoScaler",
    "ScalingPolicy",
    "make_block_producer",
    "make_model_processor",
    "passthrough_processor",
    "make_compression_edge_processor",
    "DataTrigger",
    "TumblingWindow",
    "make_aggregating_edge_processor",
    "make_threshold_filter",
    "make_windowed_edge_processor",
    "compose_edge_processors",
]
