"""Autoscaling policy.

Implements the paper's runtime-adaptation story: "if a bottleneck arises
due to increased data rates ... the allocated resources can be adapted,
i.e., expanded and scaled-down, dynamically at runtime". The
:class:`AutoScaler` watches a lag signal (records waiting in the broker
versus processing progress) and scales the consumer side of a running
pipeline within configured bounds.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.events import LOAD_NORMAL, LOAD_PEAK, EventBus
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ScalingPolicy:
    """Bounds and thresholds for the autoscaler.

    Scale up when the total broker lag exceeds ``scale_up_lag``; scale
    down when it drops below ``scale_down_lag``. ``cooldown`` seconds
    must elapse between actions so the system can settle.
    """

    min_consumers: int = 1
    max_consumers: int = 8
    scale_up_lag: int = 32
    scale_down_lag: int = 4
    step: int = 1
    cooldown: float = 1.0

    def __post_init__(self) -> None:
        check_positive("min_consumers", self.min_consumers)
        check_positive("max_consumers", self.max_consumers)
        check_non_negative("scale_up_lag", self.scale_up_lag)
        check_non_negative("scale_down_lag", self.scale_down_lag)
        check_positive("step", self.step)
        check_non_negative("cooldown", self.cooldown)
        if self.min_consumers > self.max_consumers:
            raise ValueError("min_consumers must be <= max_consumers")
        if self.scale_down_lag >= self.scale_up_lag:
            raise ValueError("scale_down_lag must be < scale_up_lag")


class AutoScaler:
    """Polls a lag signal and adjusts consumer parallelism.

    Decoupled from the pipeline through two callables so it is unit
    testable in isolation:

    - ``lag_fn() -> int`` — current total backlog,
    - ``scale_fn(delta) -> None`` — add ``delta`` consumers (only
      positive deltas are requested from a live pipeline; scale-down is
      advisory via events since in-flight consumer tasks drain and exit
      with the run).
    """

    def __init__(
        self,
        lag_fn,
        scale_fn,
        policy: ScalingPolicy | None = None,
        event_bus: EventBus | None = None,
        interval: float = 0.2,
    ) -> None:
        check_positive("interval", interval)
        self.policy = policy or ScalingPolicy()
        self.events = event_bus or EventBus()
        self._lag_fn = lag_fn
        self._scale_fn = scale_fn
        self._interval = float(interval)
        self._current = self.policy.min_consumers
        self._last_action = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.actions: list[tuple] = []

    @property
    def current_consumers(self) -> int:
        return self._current

    def evaluate(self, now: float | None = None) -> int:
        """One control step; returns the delta applied (0 when idle)."""
        now = time.monotonic() if now is None else now
        if now - self._last_action < self.policy.cooldown:
            return 0
        lag = int(self._lag_fn())
        delta = 0
        if lag >= self.policy.scale_up_lag and self._current < self.policy.max_consumers:
            delta = min(self.policy.step, self.policy.max_consumers - self._current)
            self.events.publish(LOAD_PEAK, lag=lag, consumers=self._current + delta)
        elif lag <= self.policy.scale_down_lag and self._current > self.policy.min_consumers:
            delta = -min(self.policy.step, self._current - self.policy.min_consumers)
            self.events.publish(LOAD_NORMAL, lag=lag, consumers=self._current + delta)
        if delta > 0:
            self._scale_fn(delta)
        if delta != 0:
            self._current += delta
            self._last_action = now
            self.actions.append((now, delta, lag))
        return delta

    # -- background operation ---------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("autoscaler already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.evaluate()
            except Exception:
                pass  # scaling must never crash the pipeline

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
