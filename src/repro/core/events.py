"""Event bus for runtime dynamism.

The paper's applications "respond to dynamism, e.g., external events,
load peaks, and resource failures, by updating their tasks' payload or
acquiring additional resources". The bus is the wiring: components emit
events, policies (like :class:`~repro.core.scaling.AutoScaler`) and
applications subscribe.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.ids import new_id

#: Well-known event types emitted by the framework.
LOAD_PEAK = "load.peak"
LOAD_NORMAL = "load.normal"
WORKER_FAILED = "resource.worker_failed"
PILOT_STATE = "resource.pilot_state"
MODEL_UPDATED = "model.updated"
PATTERN_DETECTED = "data.pattern_detected"
FUNCTION_REPLACED = "pipeline.function_replaced"
SCALED = "pipeline.scaled"


@dataclass(frozen=True)
class Event:
    """One event on the bus."""

    type: str
    payload: dict = field(default_factory=dict)
    event_id: str = field(default_factory=lambda: new_id("event"))
    timestamp: float = field(default_factory=time.monotonic)


class EventBus:
    """Synchronous publish/subscribe with type filtering.

    Handlers run on the publisher's thread (keeps ordering deterministic
    for tests); handler exceptions are isolated and counted.
    """

    def __init__(self) -> None:
        self._handlers: dict[str, list[Callable]] = {}
        self._lock = threading.Lock()
        self._history: list[Event] = []
        self.handler_errors = 0

    def subscribe(self, event_type: str, handler: Callable) -> Callable:
        """Register ``handler(event)``; returns an unsubscribe function.

        ``event_type`` of ``"*"`` receives everything.
        """
        with self._lock:
            self._handlers.setdefault(event_type, []).append(handler)

        def unsubscribe() -> None:
            with self._lock:
                handlers = self._handlers.get(event_type, [])
                if handler in handlers:
                    handlers.remove(handler)

        return unsubscribe

    def publish(self, type_: str, **payload: Any) -> Event:
        event = Event(type=type_, payload=payload)
        with self._lock:
            self._history.append(event)
            handlers = list(self._handlers.get(type_, [])) + list(
                self._handlers.get("*", [])
            )
        for handler in handlers:
            try:
                handler(event)
            except Exception:
                self.handler_errors += 1
        return event

    def history(self, type_: str | None = None) -> list[Event]:
        with self._lock:
            events = list(self._history)
        if type_ is not None:
            events = [e for e in events if e.type == type_]
        return events
